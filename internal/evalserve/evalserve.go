// Package evalserve is the shared NNP evaluation service: any number of
// KMC engines — the serial engine, sublattice ranks, or remote clients on
// the wire protocol — submit vacancy systems and receive the exact 1+8
// hop energies of Sec. 3.4.
//
// Requests are (1) deduplicated through a sharded LRU cache keyed on a
// canonical content-address of the VET local environment — the paper's
// vacancy cache (Sec. 3.2) generalized across vacancies and across
// engines — and (2) on miss, coalesced by a batcher into wide per-element
// matrices evaluated through the big-fusion operator (Sec. 3.5) on a
// bounded worker pool with backpressure and graceful drain.
//
// The hard contract, inherited from the repo's trajectory tests: cached
// and uncached runs must be bit-identical. Three mechanisms enforce it —
// the cache stores the exact f64 outputs, every hit re-verifies the full
// encoded environment (hash equality is never trusted alone), and the
// fused f64 batch path reproduces the uncached float-addition sequence
// exactly (see FusionBackend).
package evalserve

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tensorkmc/internal/encoding"
	"tensorkmc/internal/fault"
	"tensorkmc/internal/telemetry"
	"tensorkmc/internal/telemetry/trace"
)

// Options tune the service; zero values take the defaults.
type Options struct {
	// Capacity is the total cache size in entries (default 1<<15).
	Capacity int
	// Shards is the cache shard count (default 8, rounded up to a power
	// of two).
	Shards int
	// MaxBatch bounds how many distinct systems one fused evaluation
	// carries (default 64).
	MaxBatch int
	// Workers is the evaluation worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the pending-miss queue; submitters block when it
	// is full — the service's backpressure (default 4×MaxBatch).
	QueueDepth int
	// SpecQueueDepth bounds the low-priority speculative-prefetch queue.
	// Unlike the demand queue it never blocks: a full queue drops the
	// prefetch (speculation is advisory). Default = QueueDepth.
	SpecQueueDepth int
	// Telemetry, if non-nil, exports the service counters as registry
	// metrics and times fused dispatches under the evalserve/batch span.
	// The registry metrics are function-backed reads of the very same
	// atomics and shard counters that Stats() snapshots, so /metrics and
	// Stats() can never disagree about a value — they are one storage
	// location rendered two ways.
	Telemetry *telemetry.Set
}

// WithDefaults returns a copy with every zero field resolved to its
// default — for callers that need the effective values (e.g. to size a
// backend pool to the worker count).
func (o Options) WithDefaults() Options {
	o.applyDefaults()
	return o
}

func (o *Options) applyDefaults() {
	if o.Capacity <= 0 {
		o.Capacity = 1 << 15
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.MaxBatch
	}
	if o.SpecQueueDepth <= 0 {
		o.SpecQueueDepth = o.QueueDepth
	}
}

// Stats is a point-in-time account of the service.
type Stats struct {
	// Shards holds every cache shard's counters in shard order; the
	// embedded aggregate sums them.
	Shards []CacheStats
	CacheStats
	// Batches counts fused evaluations; BatchedSystems the distinct
	// systems they carried; Deduped the requests answered by a
	// batch-mate's evaluation; MaxBatchWidth the widest batch seen.
	Batches        int64
	BatchedSystems int64
	Deduped        int64
	MaxBatchWidth  int64
	// QueueHighWater is the deepest the pending-miss queue has been.
	QueueHighWater int64
	// WidthHist is the batch-occupancy histogram: WidthHist[w] counts
	// fused batches that evaluated exactly w distinct systems (w capped
	// at MaxBatch; index 0 is unused). Σ_w WidthHist[w] == Batches and
	// Σ_w w·WidthHist[w] == BatchedSystems.
	WidthHist []int64
	// SpecEnqueued / SpecDropped / SpecCoalesced count Prefetch calls
	// that were queued, dropped on a full spec queue, or skipped because
	// the environment was already in flight; SpecBatched counts the
	// speculative systems fused batches actually evaluated.
	SpecEnqueued  int64
	SpecDropped   int64
	SpecCoalesced int64
	SpecBatched   int64
}

// HitRate returns the cache hit fraction (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Occupancy returns the mean distinct systems per fused batch.
func (s Stats) Occupancy() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedSystems) / float64(s.Batches)
}

// OccupancyP50 returns the median batch width from the occupancy
// histogram (0 when no batches have run): the smallest width w such that
// at least half of all batches were no wider than w.
func (s Stats) OccupancyP50() int64 {
	if s.Batches == 0 || len(s.WidthHist) == 0 {
		return 0
	}
	half := (s.Batches + 1) / 2
	var seen int64
	for w, n := range s.WidthHist {
		seen += n
		if seen >= half {
			return int64(w)
		}
	}
	return int64(len(s.WidthHist) - 1)
}

// String renders the one-line operations summary.
func (s Stats) String() string {
	return fmt.Sprintf("evalserve: %.1f%% hit rate (%d hits, %d misses, %d evictions), %d batches (occupancy mean %.1f p50 %d max %d), %d deduped, %d spec batched (%d warm hits), queue high-water %d",
		100*s.HitRate(), s.Hits, s.Misses, s.Evictions,
		s.Batches, s.Occupancy(), s.OccupancyP50(), s.MaxBatchWidth,
		s.Deduped, s.SpecBatched, s.SpecWarmHits, s.QueueHighWater)
}

// response carries a request's outcome back to its submitter.
type response struct {
	res Result
	err error
}

// request is one pending miss. spec marks a speculative prefetch: nobody
// waits on its done channel (buffered, so completion never blocks), and
// workers only pick it up after all demand work. tctx, when valid,
// carries the submitter's distributed-trace context so the fused batch
// that resolves the request can join its trace; enq is the submission
// time the batch span turns into a queue-wait annotation.
type request struct {
	vet  encoding.VET
	env  []byte
	hash uint64
	spec bool
	tctx trace.Context
	enq  time.Time
	done chan response
}

// flight tracks one environment's in-progress evaluation so concurrent
// misses of the same environment coalesce onto a single backend call
// instead of racing each other into the batcher.
type flight struct {
	env     []byte
	waiters []*request
}

// Server is the evaluation service. It implements kmc.Model (Tables +
// HopEnergies) and is safe for any number of concurrent callers, so a
// single Server can be handed to every engine in a process — the serial
// engine, all sublattice ranks, and the TCP front-end at once.
type Server struct {
	be    Backend
	tb    *encoding.Tables
	cache *Cache
	opts  Options

	reqCh  chan *request
	specCh chan *request // low-priority speculative prefetches
	mu     sync.RWMutex  // closed-flag vs in-flight submissions
	close  sync.Once
	done   bool        // guarded by mu: no sends after close(reqCh)
	closed atomic.Bool // fast-path refusal, checked before the cache
	wg     sync.WaitGroup

	flightMu sync.Mutex
	flights  map[uint64][]*flight

	batches        atomic.Int64
	batchedSystems atomic.Int64
	deduped        atomic.Int64
	maxBatchWidth  atomic.Int64
	queueHighWater atomic.Int64
	specEnqueued   atomic.Int64
	specDropped    atomic.Int64
	specCoalesced  atomic.Int64
	specBatched    atomic.Int64
	widthHist      []atomic.Int64 // index = min(batch width, MaxBatch)

	batchPh *telemetry.Phase   // nil when telemetry is off
	journal *telemetry.Journal // span sink for traced requests; nil when telemetry is off
}

// New starts a service over the backend.
func New(be Backend, opts Options) *Server {
	opts.applyDefaults()
	s := &Server{
		be:        be,
		tb:        be.Tables(),
		cache:     NewCache(opts.Capacity, opts.Shards),
		opts:      opts,
		reqCh:     make(chan *request, opts.QueueDepth),
		specCh:    make(chan *request, opts.SpecQueueDepth),
		flights:   map[uint64][]*flight{},
		widthHist: make([]atomic.Int64, opts.MaxBatch+1),
	}
	s.bindTelemetry(opts.Telemetry)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// bindTelemetry registers the service counters as function-backed
// registry metrics reading the same atomics Stats() snapshots, wires
// the batch-dispatch span, and hands the cache the flight recorder for
// sampled eviction events.
func (s *Server) bindTelemetry(set *telemetry.Set) {
	if set == nil {
		return
	}
	reg := set.Reg()
	agg := func(pick func(CacheStats) int64) func() int64 {
		return func() int64 {
			var total int64
			for _, sh := range s.cache.Stats() {
				total += pick(sh)
			}
			return total
		}
	}
	reg.CounterFunc(telemetry.MetricCacheHits,
		"Evaluation cache lookups answered from a shard.",
		agg(func(c CacheStats) int64 { return c.Hits }))
	reg.CounterFunc(telemetry.MetricCacheMisses,
		"Evaluation cache lookups that fell through to the batcher.",
		agg(func(c CacheStats) int64 { return c.Misses }))
	reg.CounterFunc(telemetry.MetricCacheEvictions,
		"Evaluation cache entries displaced by the LRU policy.",
		agg(func(c CacheStats) int64 { return c.Evictions }))
	reg.CounterFunc(telemetry.MetricCacheCollisions,
		"Hash matches vetoed by the full-environment compare.",
		agg(func(c CacheStats) int64 { return c.Collisions }))
	reg.GaugeFunc(telemetry.MetricCacheEntries,
		"Evaluation cache resident entries.",
		func() float64 {
			var total int64
			for _, sh := range s.cache.Stats() {
				total += int64(sh.Entries)
			}
			return float64(total)
		})
	reg.CounterFunc(telemetry.MetricEvalBatches,
		"Fused evaluation batches dispatched.",
		s.batches.Load)
	reg.CounterFunc(telemetry.MetricEvalBatchedSys,
		"Distinct vacancy systems carried by fused batches.",
		s.batchedSystems.Load)
	reg.CounterFunc(telemetry.MetricEvalDeduped,
		"Requests answered by a batch-mate's in-flight evaluation.",
		s.deduped.Load)
	reg.GaugeFunc(telemetry.MetricEvalQueueHigh,
		"Deepest the pending-miss queue has been.",
		func() float64 { return float64(s.queueHighWater.Load()) })
	reg.CounterFunc(telemetry.MetricEvalSpecEnq,
		"Speculative prefetches accepted onto the low-priority queue.",
		s.specEnqueued.Load)
	reg.CounterFunc(telemetry.MetricEvalSpecDropped,
		"Speculative prefetches dropped on a full queue.",
		s.specDropped.Load)
	reg.CounterFunc(telemetry.MetricEvalSpecBatched,
		"Speculative systems evaluated by fused batches.",
		s.specBatched.Load)
	reg.CounterFunc(telemetry.MetricEvalSpecWarmHits,
		"Demand lookups answered by a speculatively inserted cache entry.",
		agg(func(c CacheStats) int64 { return c.SpecWarmHits }))
	s.batchPh = set.Trace().PhaseAt(telemetry.PhaseEvalServe, telemetry.PhaseBatch)
	s.journal = set.Events()
	s.cache.setJournal(set.Events())
}

// Tables returns the shared encoding tables (kmc.Model interface).
func (s *Server) Tables() *encoding.Tables { return s.tb }

// HopEnergies resolves one vacancy system through the cache-then-batch
// pipeline (kmc.Model interface). Corruption detected during evaluation
// re-panics in the caller's goroutine as *fault.CorruptionError, exactly
// like a direct model evaluation, so engine-layer recovery is unchanged.
func (s *Server) HopEnergies(vet encoding.VET) (initial float64, final [8]float64, valid [8]bool) {
	res, err := s.Evaluate(vet)
	if err != nil {
		var ce *fault.CorruptionError
		if errors.As(err, &ce) {
			panic(ce)
		}
		panic(err)
	}
	return res.Initial, res.Final, res.Valid
}

// Evaluate resolves one vacancy system, returning corruption as an error
// (the form the wire front-end needs).
func (s *Server) Evaluate(vet encoding.VET) (Result, error) {
	return s.EvaluateTraced(vet, trace.Context{})
}

// EvaluateTraced is Evaluate carrying a distributed-trace context — the
// server leg of a cross-process trace. With a valid context and live
// telemetry, the request's resolution is recorded as a "serve" span in
// the service's journal (cache hit, flight dedup, or queued miss), and
// the fused batch that evaluates a queued miss hangs its own span
// (batch fill, GEMM time, scatter) under it. An invalid context — or a
// service without telemetry — makes this exactly Evaluate.
func (s *Server) EvaluateTraced(vet encoding.VET, tctx trace.Context) (Result, error) {
	if s.closed.Load() {
		return Result{}, errors.New("evalserve: server closed")
	}
	sp := trace.Start(s.journal, tctx, "serve")
	hash := s.tb.Fingerprint(vet)
	if res, ok := s.cache.Get(hash, vet); ok {
		sp.EndMsg("cache=hit")
		return res, nil
	}
	req := &request{vet: vet, hash: hash, tctx: sp.Context(), done: make(chan response, 1)}
	if s.joinFlight(req) {
		// Another caller is already evaluating this exact environment;
		// its completion answers us too.
		resp := <-req.done
		sp.EndMsg("cache=miss dedup=inflight")
		return resp.res, resp.err
	}
	s.mu.RLock()
	if s.done {
		s.mu.RUnlock()
		err := errors.New("evalserve: server closed")
		s.completeFlight(req.hash, req.env, Result{}, err)
		sp.EndMsg("error=closed")
		return Result{}, err
	}
	req.enq = time.Now()
	s.reqCh <- req // blocks when the queue is full: backpressure
	raiseMax(&s.queueHighWater, int64(len(s.reqCh)))
	s.mu.RUnlock()
	resp := <-req.done
	sp.EndMsg("cache=miss")
	return resp.res, resp.err
}

// Prefetch enqueues a speculative evaluation of a vacancy system the
// caller predicts it will need soon. It never blocks and never returns a
// result: a warm cache, an in-flight evaluation of the same environment,
// a full speculative queue, or a closed server all turn it into a cheap
// no-op. The VET is copied, so the caller may reuse its buffer
// immediately.
//
// Determinism: speculation only inserts cache entries the demand path
// would have computed identically (same backend, same bit-exact fused
// kernels), so enabling or disabling prefetching — or any misprediction
// — can never change a trajectory, only cache temperature. The return
// value reports whether the prefetch was actually queued.
func (s *Server) Prefetch(vet encoding.VET) bool {
	if s.closed.Load() {
		return false
	}
	hash := s.tb.Fingerprint(vet)
	if s.cache.Contains(hash, vet) {
		return false
	}
	req := &request{vet: append(encoding.VET(nil), vet...), hash: hash, spec: true, done: make(chan response, 1)}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.done {
		return false
	}
	// The flight registration and the queue insert happen under one
	// flightMu hold: either both succeed, or the flight is removed before
	// anyone could have joined it — no dangling flights, no lost waiters.
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	for _, f := range s.flights[req.hash] {
		if encoding.MatchEnv(f.env, req.vet) {
			s.specCoalesced.Add(1)
			return false // already being computed; nothing to add
		}
	}
	req.env = s.tb.EncodeEnv(req.vet)
	s.flights[req.hash] = append(s.flights[req.hash], &flight{env: req.env})
	select {
	case s.specCh <- req:
		s.specEnqueued.Add(1)
		return true
	default:
		// Queue full: speculation is advisory, so drop rather than block.
		bucket := s.flights[req.hash]
		bucket = bucket[:len(bucket)-1]
		if len(bucket) == 0 {
			delete(s.flights, req.hash)
		} else {
			s.flights[req.hash] = bucket
		}
		s.specDropped.Add(1)
		return false
	}
}

// joinFlight attaches the request to an in-progress evaluation of the
// same environment if one exists; otherwise it registers a new flight
// (owned by this request) and reports false. The request's canonical
// environment encoding is computed here either way.
func (s *Server) joinFlight(req *request) bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	for _, f := range s.flights[req.hash] {
		if encoding.MatchEnv(f.env, req.vet) {
			f.waiters = append(f.waiters, req)
			s.deduped.Add(1)
			return true
		}
	}
	req.env = s.tb.EncodeEnv(req.vet)
	s.flights[req.hash] = append(s.flights[req.hash], &flight{env: req.env})
	return false
}

// completeFlight deregisters an environment's flight and answers every
// waiter that joined while it was pending. The cache entry must already
// be in place (a miss arriving after deregistration re-evaluates, and the
// batcher's second-chance lookup resolves it from the cache).
func (s *Server) completeFlight(hash uint64, env []byte, res Result, err error) {
	s.flightMu.Lock()
	bucket := s.flights[hash]
	var waiters []*request
	for i, f := range bucket {
		if bytes.Equal(f.env, env) {
			waiters = f.waiters
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(s.flights, hash)
	} else {
		s.flights[hash] = bucket
	}
	s.flightMu.Unlock()
	for _, w := range waiters {
		w.done <- response{res: res, err: err}
	}
}

// Close stops accepting work, drains every queued request — demand and
// speculative alike, since a demand caller may be waiting on a flight a
// prefetch owns — and waits for the workers to finish. It is idempotent.
func (s *Server) Close() {
	s.close.Do(func() {
		s.closed.Store(true)
		s.mu.Lock()
		s.done = true
		close(s.reqCh)
		close(s.specCh)
		s.mu.Unlock()
		s.wg.Wait()
	})
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Shards:         s.cache.Stats(),
		Batches:        s.batches.Load(),
		BatchedSystems: s.batchedSystems.Load(),
		Deduped:        s.deduped.Load(),
		MaxBatchWidth:  s.maxBatchWidth.Load(),
		QueueHighWater: s.queueHighWater.Load(),
		SpecEnqueued:   s.specEnqueued.Load(),
		SpecDropped:    s.specDropped.Load(),
		SpecCoalesced:  s.specCoalesced.Load(),
		SpecBatched:    s.specBatched.Load(),
		WidthHist:      make([]int64, len(s.widthHist)),
	}
	for w := range s.widthHist {
		st.WidthHist[w] = s.widthHist[w].Load()
	}
	for _, sh := range st.Shards {
		st.CacheStats.add(sh)
	}
	return st
}

// worker pulls pending misses, coalescing everything immediately
// available (up to MaxBatch) into one fused evaluation. Demand requests
// always fill first; any leftover width is topped up from the
// speculative queue — the speculation payoff: batches that would have
// gone out narrow instead carry prefetch work that warms the cache for
// free. With a single synchronous caller and no speculation, batches
// degenerate to width 1 — correct, just unamortised.
func (s *Server) worker() {
	defer s.wg.Done()
	reqCh, specCh := s.reqCh, s.specCh
	for reqCh != nil || specCh != nil {
		// Block until any work arrives (a nil channel never fires).
		var batch []*request
		select {
		case r, ok := <-reqCh:
			if !ok {
				reqCh = nil
				continue
			}
			batch = append(batch, r)
		case r, ok := <-specCh:
			if !ok {
				specCh = nil
				continue
			}
			batch = append(batch, r)
		}
		// Fill with everything immediately available: demand first...
		for reqCh != nil && len(batch) < s.opts.MaxBatch {
			select {
			case r, ok := <-reqCh:
				if !ok {
					reqCh = nil
					continue
				}
				batch = append(batch, r)
				continue
			default:
			}
			break
		}
		// ...then speculative top-up of the remaining width.
		for specCh != nil && len(batch) < s.opts.MaxBatch {
			select {
			case r, ok := <-specCh:
				if !ok {
					specCh = nil
					continue
				}
				batch = append(batch, r)
				continue
			default:
			}
			break
		}
		s.serve(batch)
	}
}

// serve deduplicates a batch, re-checks the cache (another worker may
// have filled an entry since the miss), evaluates the remaining distinct
// systems in one backend call, stores the exact outputs, and fans results
// out to every submitter.
func (s *Server) serve(batch []*request) {
	sw := s.batchPh.Start()
	defer sw.Stop()
	// Every queued request owns a distinct environment's flight (joiners
	// never enqueue), so no intra-batch dedup is needed — only a
	// second-chance cache check, since an entry may have landed between
	// the caller's miss and this dispatch.
	pending := batch[:0]
	for _, r := range batch {
		if res, ok := s.cache.peek(r.hash, r.vet, !r.spec); ok {
			r.done <- response{res: res}
			s.completeFlight(r.hash, r.env, res, nil)
			continue
		}
		pending = append(pending, r)
	}
	if len(pending) == 0 {
		return
	}

	vets := make([]encoding.VET, len(pending))
	for i, r := range pending {
		vets[i] = r.vet
	}
	// The fused batch joins the trace of the first traced request it
	// serves — the lineage a cross-process tree needs to show where a
	// queued miss actually spent its time (fill, GEMM, scatter).
	var bsp *trace.Span
	for _, r := range pending {
		if r.tctx.Valid() {
			bsp = trace.Start(s.journal, r.tctx, "batch")
			if !r.enq.IsZero() {
				bsp.Event("queue-wait %.3fms", float64(time.Since(r.enq).Microseconds())/1e3)
			}
			break
		}
	}
	gemmStart := time.Now()
	results, err := s.evaluate(vets)
	if err != nil {
		bsp.EndMsg("error=%v", err)
		for _, r := range pending {
			r.done <- response{err: err}
			s.completeFlight(r.hash, r.env, Result{}, err)
		}
		return
	}
	gemm := time.Since(gemmStart)
	var specN int64
	for i, r := range pending {
		if r.spec {
			s.cache.PutSpeculative(r.hash, r.env, results[i])
			specN++
		} else {
			s.cache.Put(r.hash, r.env, results[i])
		}
		r.done <- response{res: results[i]}
		s.completeFlight(r.hash, r.env, results[i], nil)
	}
	bsp.EndMsg("width=%d spec=%d gemm=%.3fms", len(pending), specN, float64(gemm.Microseconds())/1e3)

	s.batches.Add(1)
	s.batchedSystems.Add(int64(len(pending)))
	s.specBatched.Add(specN)
	w := len(pending)
	if w >= len(s.widthHist) {
		w = len(s.widthHist) - 1
	}
	s.widthHist[w].Add(1)
	raiseMax(&s.maxBatchWidth, int64(len(pending)))
}

// raiseMax lifts *m to at least v. A plain load-compare-store here would
// race: two goroutines could each pass the compare and the smaller store
// could land last, regressing the high-water mark. The CAS loop retries
// until either our value is published or someone else published a larger
// one.
func raiseMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// evaluate runs the backend, converting a corruption tripwire panic into
// an error so a poisoned batch fails its submitters instead of killing
// the worker pool.
func (s *Server) evaluate(vets []encoding.VET) (results []Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			if ce, ok := p.(*fault.CorruptionError); ok {
				err = ce
				return
			}
			panic(p)
		}
	}()
	results = s.be.EvaluateBatch(vets)
	if len(results) != len(vets) {
		return nil, fmt.Errorf("evalserve: backend returned %d results for %d systems", len(results), len(vets))
	}
	return results, nil
}
