package core

import (
	"testing"

	"tensorkmc/internal/feature"
	"tensorkmc/internal/kmc"
	"tensorkmc/internal/nnp"
	"tensorkmc/internal/rng"
	"tensorkmc/internal/units"
)

func TestNewDefaults(t *testing.T) {
	s, err := New(Config{Cells: [3]int{10, 10, 10}, CuFraction: 0.01, VacancyFraction: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.LatticeConstant != units.LatticeConstantFe || s.Cfg.Temperature != units.ReactorTemperature ||
		s.Cfg.Cutoff != units.CutoffStandard {
		t.Fatalf("defaults not applied: %+v", s.Cfg)
	}
	if s.Tables.NLocal != 112 {
		t.Fatal("tables not built at the standard cutoff")
	}
	if s.Box().NumSites() != 2000 {
		t.Fatal("box size wrong")
	}
}

func TestNewValidation(t *testing.T) {
	cases := map[string]Config{
		"zero cells":  {Cells: [3]int{0, 4, 4}},
		"bad frac":    {Cells: [3]int{4, 4, 4}, CuFraction: 0.9, VacancyFraction: 0.2},
		"nnp w/o net": {Cells: [3]int{10, 10, 10}, Potential: NNP},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSerialRun(t *testing.T) {
	s, err := New(Config{Cells: [3]int{10, 10, 10}, CuFraction: 0.05, VacancyFraction: 0.002, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	rep, err := s.Run(2e-8, func(ev kmc.Event) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if s.Time() != 2e-8 {
		t.Fatalf("Time = %v, want exactly 2e-8 (clipped)", s.Time())
	}
	if int64(events) != s.Hops() || rep.Hops != s.Hops() {
		t.Fatalf("observer saw %d events, engine reports %d", events, s.Hops())
	}
	if rep.Analysis.NumCu == 0 {
		t.Fatal("analysis missing Cu")
	}
	// A second segment continues the same trajectory.
	rep2, err := s.Run(2e-8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Time() != 4e-8 {
		t.Fatalf("Time after second segment = %v", s.Time())
	}
	if rep2.Hops < rep.Hops {
		t.Fatal("hop counter went backwards")
	}
}

func TestParallelRun(t *testing.T) {
	s, err := New(Config{
		Cells: [3]int{16, 16, 16}, CuFraction: 0.03, VacancyFraction: 0.001,
		Seed: 4, Ranks: [3]int{2, 2, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	fe0, cu0, vac0 := s.Box().Count()
	rep, err := s.Run(1e-7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hops == 0 {
		t.Fatal("no hops in parallel run")
	}
	fe1, cu1, vac1 := s.Box().Count()
	if fe0 != fe1 || cu0 != cu1 || vac0 != vac1 {
		t.Fatal("species not conserved in parallel run")
	}
	if s.Time() != 1e-7 {
		t.Fatalf("parallel time %v", s.Time())
	}
	// Observers are a serial-only feature.
	if _, err := s.Run(1e-8, func(kmc.Event) {}); err == nil {
		t.Fatal("parallel run accepted an observer")
	}
	// Successive segments must use fresh randomness (different hops
	// expected; identical would indicate seed reuse).
	h1 := rep.Hops
	rep2, err := s.Run(1e-7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Hops == h1 {
		t.Fatal("second segment executed zero hops")
	}
}

func TestNNPPotentialPath(t *testing.T) {
	desc := feature.Standard(units.CutoffStandard)
	pot := nnp.NewPotential(desc, []int{64, 8, 1}, rng.New(9))
	s, err := New(Config{
		Cells: [3]int{10, 10, 10}, CuFraction: 0.02, VacancyFraction: 0.001,
		Seed: 5, Potential: NNP, Net: pot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(5e-9, nil); err != nil {
		t.Fatal(err)
	}
	if s.Hops() == 0 {
		t.Fatal("NNP-driven run executed no hops")
	}
}

func TestNNPCutoffMismatchRejected(t *testing.T) {
	desc := feature.Standard(units.CutoffStandard)
	pot := nnp.NewPotential(desc, []int{64, 8, 1}, rng.New(9))
	_, err := New(Config{
		Cells: [3]int{10, 10, 10}, Potential: NNP, Net: pot,
		Cutoff: units.CutoffShort, // tables narrower than the potential
	})
	if err == nil {
		t.Fatal("expected cutoff mismatch error")
	}
}

func TestDeterministicAcrossConstructions(t *testing.T) {
	mk := func() *Simulation {
		s, err := New(Config{Cells: [3]int{10, 10, 10}, CuFraction: 0.05, VacancyFraction: 0.002, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	if _, err := a.Run(3e-8, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(3e-8, nil); err != nil {
		t.Fatal(err)
	}
	if !a.Box().Equal(b.Box()) {
		t.Fatal("same config+seed produced different trajectories")
	}
	if a.IsolatedCu() != b.IsolatedCu() {
		t.Fatal("observables differ")
	}
}

func TestEngineStatsExposed(t *testing.T) {
	s, err := New(Config{Cells: [3]int{10, 10, 10}, CuFraction: 0.02, VacancyFraction: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1e-8, nil); err != nil {
		t.Fatal(err)
	}
	if s.EngineStats().Refreshes == 0 {
		t.Fatal("no refreshes recorded")
	}
}

// TestParallelNNPRun covers the NNP-evaluator-per-rank factory path in a
// real multi-rank run.
func TestParallelNNPRun(t *testing.T) {
	desc := feature.Standard(units.CutoffStandard)
	pot := nnp.NewPotential(desc, []int{64, 8, 1}, rng.New(21))
	s, err := New(Config{
		Cells: [3]int{16, 16, 16}, CuFraction: 0.02, VacancyFraction: 0.0005,
		Seed: 22, Potential: NNP, Net: pot, Ranks: [3]int{2, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	fe0, cu0, vac0 := s.Box().Count()
	rep, err := s.Run(4e-8, nil)
	if err != nil {
		t.Fatal(err)
	}
	fe1, cu1, vac1 := s.Box().Count()
	if fe0 != fe1 || cu0 != cu1 || vac0 != vac1 {
		t.Fatal("species not conserved in NNP parallel run")
	}
	if rep.Hops == 0 {
		t.Fatal("no hops")
	}
}

// TestInitialBoxRestart covers the checkpoint/restart configuration.
func TestInitialBoxRestart(t *testing.T) {
	s1, err := New(Config{Cells: [3]int{10, 10, 10}, CuFraction: 0.05, VacancyFraction: 0.002, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(1e-8, nil); err != nil {
		t.Fatal(err)
	}
	snapshot := s1.Box().Clone()
	s2, err := New(Config{InitialBox: snapshot, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Box().Equal(snapshot) {
		t.Fatal("restart did not preserve the box")
	}
	// The restart clones: evolving s2 must not mutate the snapshot.
	if _, err := s2.Run(1e-8, nil); err != nil {
		t.Fatal(err)
	}
	if !snapshot.Equal(s1.Box()) {
		t.Fatal("restart aliased the caller's box")
	}
}
