package ctl

// The kill-the-controller chaos matrix: a real tkmc-ctl subprocess is
// SIGKILLed mid-run, mid-WAL-append, mid-WAL-fsync, mid-compaction and
// mid-preemption — for both serial and parallel decks — then restarted
// on the same state directory. The restarted controller must re-adopt
// every job and finish it with a final checkpoint byte-identical to an
// uninterrupted baseline run of the same deck: the crash-only claim,
// proven at the strongest granularity the system has.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tensorkmc/internal/core"
)

var (
	ctlBinOnce sync.Once
	ctlBinPath string
	ctlBinErr  error
)

// ctlBinary builds cmd/tkmc-ctl once per test binary invocation.
func ctlBinary(t *testing.T) string {
	t.Helper()
	ctlBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tkmc-ctl-bin")
		if err != nil {
			ctlBinErr = err
			return
		}
		ctlBinPath = filepath.Join(dir, "tkmc-ctl")
		cmd := exec.Command("go", "build", "-o", ctlBinPath, "./cmd/tkmc-ctl")
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			ctlBinErr = fmt.Errorf("building tkmc-ctl: %v\n%s", err, out)
		}
	})
	if ctlBinErr != nil {
		t.Fatal(ctlBinErr)
	}
	return ctlBinPath
}

// controller is a live tkmc-ctl subprocess under test.
type controller struct {
	cmd    *exec.Cmd
	addr   string
	waitCh chan error
}

// startController launches tkmc-ctl on dataDir, parses the bound
// address from its banner, and keeps draining its stdout.
func startController(t *testing.T, dataDir, crashSpec string, extraArgs ...string) *controller {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dataDir, "-snapshot-every", "3"}, extraArgs...)
	cmd := exec.Command(ctlBinary(t), args...)
	for _, kv := range os.Environ() {
		if !strings.HasPrefix(kv, crashEnv+"=") {
			cmd.Env = append(cmd.Env, kv)
		}
	}
	if crashSpec != "" {
		cmd.Env = append(cmd.Env, crashEnv+"="+crashSpec)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &controller{cmd: cmd, waitCh: make(chan error, 1)}
	t.Cleanup(func() { cmd.Process.Kill(); <-c.waitCh })

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			rest := line[i+len("listening on http://"):]
			c.addr = rest[:strings.Index(rest, "/jobs")]
			break
		}
	}
	if c.addr == "" {
		cmd.Process.Kill()
		t.Fatalf("controller printed no listen banner")
	}
	go func() {
		io.Copy(io.Discard, stdout)
		c.waitCh <- cmd.Wait()
	}()
	return c
}

// waitDead blocks until the subprocess exits and reports whether it was
// killed by SIGKILL (as opposed to exiting cleanly).
func (c *controller) waitDead(t *testing.T) bool {
	t.Helper()
	select {
	case err := <-c.waitCh:
		c.waitCh <- err // keep the channel refillable for Cleanup
		var ee *exec.ExitError
		if err == nil {
			return false
		}
		if ok := asExitError(err, &ee); ok {
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok {
				return ws.Signaled() && ws.Signal() == syscall.SIGKILL
			}
		}
		return false
	case <-time.After(120 * time.Second):
		t.Fatal("controller did not die within the deadline")
		return false
	}
}

func asExitError(err error, ee **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*ee = e
	}
	return ok
}

// sigterm asks for a graceful drain and asserts a clean exit 0.
func (c *controller) sigterm(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-c.waitCh:
		c.waitCh <- err
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("controller did not drain within the deadline")
	}
}

func (c *controller) post(t *testing.T, deck string) JobRecord {
	t.Helper()
	resp, err := http.Post("http://"+c.addr+"/jobs", "text/plain", strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var rec JobRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

func (c *controller) get(id string) (JobRecord, error) {
	resp, err := http.Get("http://" + c.addr + "/jobs/" + id)
	if err != nil {
		return JobRecord{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobRecord{}, fmt.Errorf("get %s: %d", id, resp.StatusCode)
	}
	var rec JobRecord
	return rec, json.NewDecoder(resp.Body).Decode(&rec)
}

// waitHTTP polls a job over HTTP until the predicate holds. Transport
// errors are tolerated (the process may be dying under chaos).
func (c *controller) waitHTTP(t *testing.T, id, what string, pred func(JobRecord) bool) JobRecord {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	var last JobRecord
	for time.Now().Before(deadline) {
		rec, err := c.get(id)
		if err == nil {
			last = rec
			if pred(rec) {
				return rec
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s on %s; last %+v", what, id, last)
	return JobRecord{}
}

// chaosDecks are the two engine paths under test: the serial engine
// (RNG stream in the checkpoint) and the sector-parallel engine
// (deterministic per-segment reseeding).
func chaosDecks() map[string]string {
	serial := testDeck("chaos", "normal", 21, 1e-7, 2e-8)
	parallel := `
cells        10 10 10
cu           0.05
vacancy      0.002
duration     2e-7
seed         22
potential    eam
ranks        2 1 1
tstop        1e-8
checkpoint   ck.tkmc
checkpoint_every 2e-8
tenant       chaos
`
	return map[string]string{"serial": serial, "parallel": parallel}
}

// baselineCheckpoint runs the deck uninterrupted on an in-process plane
// (the identical runner code path) and returns the final checkpoint
// bytes and record.
func baselineCheckpoint(t *testing.T, deck string) ([]byte, JobRecord) {
	t.Helper()
	p := openTestPlane(t, Config{})
	rec, err := p.Submit(deck)
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, p, rec.ID, "baseline completion",
		func(r JobRecord) bool { return r.State.Terminal() })
	if final.State != StateCompleted {
		t.Fatalf("baseline: %s (%s)", final.State, final.Error)
	}
	ck, err := os.ReadFile(core.JobCheckpointPath(p.JobDir(rec.ID)))
	if err != nil {
		t.Fatal(err)
	}
	return ck, final
}

// TestChaosMatrix is the kill matrix: {mid-run SIGKILL, mid-WAL-append,
// post-fsync, mid-compaction} × {serial, parallel}. Every cell must
// recover to a byte-identical final checkpoint.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos matrix skipped in -short")
	}
	ctlBinary(t)
	points := []struct {
		name string
		spec string // "" = external SIGKILL once the job shows progress
	}{
		{"midrun", ""},
		{"wal-append", CrashWALAppend + ":4"},
		{"wal-fsync", CrashWALFsync + ":5"},
		{"snapshot", CrashSnapshot + ":1"},
	}
	for deckName, deck := range chaosDecks() {
		deckName, deck := deckName, deck
		t.Run(deckName, func(t *testing.T) {
			wantCk, wantRec := baselineCheckpoint(t, deck)
			for _, pt := range points {
				pt := pt
				t.Run(pt.name, func(t *testing.T) {
					dir := t.TempDir()
					c := startController(t, dir, pt.spec)
					rec := c.post(t, deck)
					if pt.spec == "" {
						// External SIGKILL once the job shows committed
						// progress (or, if it outraced the poll, after
						// completion — which then exercises restart over a
						// finished job instead).
						c.waitHTTP(t, rec.ID, "progress", func(r JobRecord) bool {
							return r.Time > 0 || r.State.Terminal()
						})
						c.cmd.Process.Kill()
					}
					if !c.waitDead(t) {
						t.Fatal("controller exited cleanly; the chaos point never fired")
					}

					// Restart on the same state directory, no chaos.
					c2 := startController(t, dir, "")
					final := c2.waitHTTP(t, rec.ID, "post-crash completion",
						func(r JobRecord) bool { return r.State.Terminal() })
					if final.State != StateCompleted {
						t.Fatalf("recovered job: %s (%s)", final.State, final.Error)
					}
					if final.Time != wantRec.Time || final.Hops != wantRec.Hops {
						t.Fatalf("recovered trajectory diverged: t=%v hops=%d, baseline t=%v hops=%d",
							final.Time, final.Hops, wantRec.Time, wantRec.Hops)
					}
					c2.sigterm(t)

					gotCk, err := os.ReadFile(filepath.Join(dir, "jobs", rec.ID, "checkpoint.tkmc"))
					if err != nil {
						t.Fatal(err)
					}
					if string(gotCk) != string(wantCk) {
						t.Fatalf("post-crash checkpoint differs from uninterrupted baseline (%d vs %d bytes)",
							len(gotCk), len(wantCk))
					}
				})
			}
		})
	}
}

// TestChaosPreemptionCrash kills the controller in the narrow window
// where a preemption victim has checkpointed and stopped but its
// requeue transition is not yet logged. Recovery must finish both the
// victim and the preemptor with baseline-identical checkpoints.
func TestChaosPreemptionCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos skipped in -short")
	}
	ctlBinary(t)
	lowDeck := testDeck("chaos", "low", 31, 1e-7, 1e-8)
	highDeck := testDeck("rush", "high", 32, 2e-8, 1e-8)
	lowCk, lowRec := baselineCheckpoint(t, lowDeck)
	highCk, highRec := baselineCheckpoint(t, highDeck)

	dir := t.TempDir()
	c := startController(t, dir, CrashPreempt+":1", "-max-running", "1")
	low := c.post(t, lowDeck)
	c.waitHTTP(t, low.ID, "low job progress", func(r JobRecord) bool {
		return r.State == StateRunning && r.Time > 0
	})
	high := c.post(t, highDeck) // triggers the preemption whose handling crashes
	if !c.waitDead(t) {
		t.Fatal("controller survived the preemption crash point")
	}

	c2 := startController(t, dir, "", "-max-running", "1")
	lowFinal := c2.waitHTTP(t, low.ID, "victim completion",
		func(r JobRecord) bool { return r.State.Terminal() })
	highFinal := c2.waitHTTP(t, high.ID, "preemptor completion",
		func(r JobRecord) bool { return r.State.Terminal() })
	if lowFinal.State != StateCompleted || highFinal.State != StateCompleted {
		t.Fatalf("recovered states: low=%s (%s) high=%s (%s)",
			lowFinal.State, lowFinal.Error, highFinal.State, highFinal.Error)
	}
	if lowFinal.Restores < 1 {
		t.Fatalf("victim was not re-adopted: %+v", lowFinal)
	}
	c2.sigterm(t)

	for _, check := range []struct {
		id   string
		want []byte
		rec  JobRecord
		got  JobRecord
	}{{low.ID, lowCk, lowRec, lowFinal}, {high.ID, highCk, highRec, highFinal}} {
		got, err := os.ReadFile(filepath.Join(dir, "jobs", check.id, "checkpoint.tkmc"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(check.want) {
			t.Fatalf("%s: checkpoint differs from baseline", check.id)
		}
		if check.got.Time != check.rec.Time || check.got.Hops != check.rec.Hops {
			t.Fatalf("%s: trajectory diverged", check.id)
		}
	}
}
