// Package telemetry is the run-wide observability substrate: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms with snapshot/merge and Prometheus text
// rendering), a lightweight span tracer that aggregates the KMC hot
// path into a per-phase timing tree (the paper's Sec. 5 per-step
// breakdown: select-hop, encode, feature, fusion/NNP eval, exchange,
// audit, checkpoint), and a flight-recorder journal — a bounded ring
// of structured events (retries, restores, cache evictions, stalled
// ranks, audit violations) flushed as JSONL on exit or crash.
//
// Everything is nil-safe: a nil *Set, *Registry, *Counter, *Phase or
// *Journal turns every operation into a no-op, so instrumented code
// carries no conditionals and an uninstrumented run pays (almost)
// nothing. Instrumentation only ever reads the wall clock and bumps
// atomics — it never touches an RNG stream or simulation state, which
// is what keeps telemetry-on and telemetry-off runs bit-identical.
package telemetry

// Standard phase names. The tracer's get-or-create semantics let every
// layer attach its spans under the same well-known path without
// threading node handles through constructors: core owns "run" and its
// segment/checkpoint/analyze children, the engines hang their hot-path
// phases under run/segment, and the evaluation service owns the
// "evalserve" root (its workers run concurrently with engine spans, so
// their time nests inside the engines' eval phase rather than adding
// to the run tree).
const (
	PhaseRun        = "run"        // one Simulation.Run call tree root
	PhaseSegment    = "segment"    // one uninterrupted run chunk
	PhaseStep       = "step"       // one serial KMC step
	PhaseSelectHop  = "select-hop" // event selection draws
	PhaseEncode     = "encode"     // VET refill from the lattice
	PhaseEval       = "eval"       // model hop-energy evaluation
	PhaseApply      = "apply"      // hop execution + cache invalidation
	PhaseSector     = "sector"     // parallel sector-window KMC
	PhaseExchange   = "exchange"   // parallel sector synchronisation
	PhaseCheckpoint = "checkpoint" // crash-safe state persistence
	PhaseAnalyze    = "analyze"    // cluster analysis
	PhaseAudit      = "audit"      // physics invariant audits
	PhaseEvalServe  = "evalserve"  // evaluation-service worker root
	PhaseBatch      = "batch"      // one fused batch evaluation
	PhaseFeature    = "feature"    // feature-matrix assembly
	PhaseFusion     = "fusion"     // big-fusion kernel launches
)

// Well-known metric families (the acceptance surface of /metrics).
const (
	MetricStepTotal        = "tkmc_step_total"
	MetricPhaseSeconds     = "tkmc_phase_seconds"
	MetricCacheHits        = "tkmc_eval_cache_hits_total"
	MetricCacheMisses      = "tkmc_eval_cache_misses_total"
	MetricCacheEvictions   = "tkmc_eval_cache_evictions_total"
	MetricCacheCollisions  = "tkmc_eval_cache_collisions_total"
	MetricCacheEntries     = "tkmc_eval_cache_entries"
	MetricEvalBatches      = "tkmc_eval_batches_total"
	MetricEvalBatchedSys   = "tkmc_eval_batched_systems_total"
	MetricEvalDeduped      = "tkmc_eval_deduped_total"
	MetricEvalQueueHigh    = "tkmc_eval_queue_high_water"
	MetricEvalSpecEnq      = "tkmc_eval_spec_enqueued_total"
	MetricEvalSpecDropped  = "tkmc_eval_spec_dropped_total"
	MetricEvalSpecBatched  = "tkmc_eval_spec_batched_total"
	MetricEvalSpecWarmHits = "tkmc_eval_spec_warm_hits_total"
	MetricFleetRetries     = "tkmc_fleet_retries_total"
	MetricFleetFailovers   = "tkmc_fleet_failovers_total"
	MetricFleetFallbacks   = "tkmc_fleet_fallbacks_total"
	MetricFleetReconnects  = "tkmc_fleet_reconnects_total"
	MetricFleetNodeUp      = "tkmc_fleet_node_up"
	MetricRecoveryRestores = "tkmc_recovery_restores_total"
	MetricRecoveryFailures = "tkmc_recovery_failures_total"
	MetricRecoveryReplays  = "tkmc_recovery_replays_total"
	MetricRecoveryAudits   = "tkmc_recovery_audits_total"
	MetricMPISends         = "tkmc_mpi_sends_total"
	MetricMPIRecvs         = "tkmc_mpi_recvs_total"
	MetricMPITimeouts      = "tkmc_mpi_timeouts_total"
	MetricEventsTotal      = "tkmc_events_total"
	MetricEventsDropped    = "tkmc_events_dropped_total"
	MetricCtlJobs          = "tkmc_ctl_jobs"
	MetricCtlSubmitted     = "tkmc_ctl_submitted_total"
	MetricCtlPreemptions   = "tkmc_ctl_preemptions_total"
	MetricCtlShed          = "tkmc_ctl_shed_total"
	MetricCtlWALAppends    = "tkmc_ctl_wal_appends_total"
	MetricCtlWALFsyncs     = "tkmc_ctl_wal_fsyncs_total"
	MetricCtlWALSnapshots  = "tkmc_ctl_wal_snapshots_total"
	MetricCtlWALFsyncSecs  = "tkmc_ctl_wal_fsync_seconds"
	MetricFedPulls         = "tkmc_federation_pulls_total"
	MetricFedPullErrors    = "tkmc_federation_pull_errors_total"
	MetricFedNodeUp        = "tkmc_federation_node_up"
	MetricSLOWindows       = "tkmc_slo_windows_total"
	MetricSLOViolations    = "tkmc_slo_violations_total"
	MetricSLOBurns         = "tkmc_slo_burns_total"
	MetricSLOCaptures      = "tkmc_slo_captures_total"
)

// CaptureEvent is the journal event type recorded when an SLO burn
// triggers a black-box capture; its Msg names the bundle directory.
const CaptureEvent = "blackbox-capture"

// Set bundles one run's telemetry: the metric registry, the span
// tracer and the flight-recorder journal. A nil *Set disables all
// three.
type Set struct {
	Registry *Registry
	Tracer   *Tracer
	Journal  *Journal
}

// NewSet builds a fully enabled telemetry set with the default journal
// capacity.
func NewSet() *Set {
	reg := NewRegistry()
	s := &Set{
		Registry: reg,
		Tracer:   NewTracer(reg),
		Journal:  NewJournal(0),
	}
	s.Journal.bindMetrics(reg)
	return s
}

// Reg returns the registry (nil on a nil set).
func (s *Set) Reg() *Registry {
	if s == nil {
		return nil
	}
	return s.Registry
}

// Trace returns the tracer (nil on a nil set).
func (s *Set) Trace() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// Events returns the journal (nil on a nil set).
func (s *Set) Events() *Journal {
	if s == nil {
		return nil
	}
	return s.Journal
}
