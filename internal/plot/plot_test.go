package plot

import (
	"strings"
	"testing"
)

func TestBarChartBasics(t *testing.T) {
	out := BarChart("speedups", []Bar{
		{Label: "base", Value: 1, Note: "paper 1.00"},
		{Label: "simd", Value: 20},
		{Label: "big", Value: 120},
	}, 40, false)
	if !strings.Contains(out, "speedups") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	if !strings.Contains(lines[1], "paper 1.00") {
		t.Fatal("missing note")
	}
	// The largest value must have the longest bar.
	if strings.Count(lines[3], "#") <= strings.Count(lines[2], "#") {
		t.Fatal("bars not proportional")
	}
	// Linear scaling: base's bar is tiny relative to 120.
	if strings.Count(lines[1], "#") > 2 {
		t.Fatal("linear small bar too long")
	}
}

func TestBarChartLogScale(t *testing.T) {
	out := BarChart("", []Bar{
		{Label: "a", Value: 1},
		{Label: "b", Value: 10},
		{Label: "c", Value: 100},
	}, 40, true)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	na := strings.Count(lines[0], "#")
	nb := strings.Count(lines[1], "#")
	nc := strings.Count(lines[2], "#")
	if !(na < nb && nb < nc) {
		t.Fatalf("log bars not ordered: %d %d %d", na, nb, nc)
	}
	// Log scaling keeps the smallest bar visible.
	if na < 5 {
		t.Fatalf("log small bar invisible: %d", na)
	}
}

func TestBarChartZeroAndNegativeWidths(t *testing.T) {
	out := BarChart("t", []Bar{{Label: "z", Value: 0}}, 2, false)
	if !strings.Contains(out, "z") {
		t.Fatal("zero bar dropped")
	}
}

func TestLinePlot(t *testing.T) {
	out := LinePlot("eff", []SeriesData{
		{Name: "strong", Marker: 'o', X: []float64{1, 2, 4, 8}, Y: []float64{1, 0.95, 0.9, 0.85}},
	}, 30, 6)
	if !strings.Contains(out, "eff") || !strings.Contains(out, "o=strong") {
		t.Fatal("missing title or legend")
	}
	if strings.Count(out, "o") < 4 {
		t.Fatal("markers missing")
	}
	if !strings.Contains(out, "x: 1 .. 8") {
		t.Fatalf("x range missing: %s", out)
	}
}

func TestLinePlotDegenerate(t *testing.T) {
	if out := LinePlot("empty", nil, 20, 5); !strings.Contains(out, "no data") {
		t.Fatal("empty plot not handled")
	}
	// Constant series must not divide by zero.
	out := LinePlot("", []SeriesData{{Name: "c", X: []float64{1, 2}, Y: []float64{5, 5}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatal("constant series not plotted")
	}
}
