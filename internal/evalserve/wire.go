package evalserve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"tensorkmc/internal/encoding"
	"tensorkmc/internal/fault"
	"tensorkmc/internal/telemetry/trace"
)

// Wire protocol of the tkmc-serve front-end.
//
// Every frame is a little-endian uint32 payload length followed by the
// payload; payload byte 0 is the opcode. A session starts with a hello
// carrying the client's lattice constant and cutoff — the server verifies
// they reproduce its own tables (same geometry ⇒ same NAll ⇒ same VET
// layout) and answers with NAll, after which the client streams eval
// frames (one canonical environment each) and receives result frames
// with the exact f64 energies. Frames larger than the session bound
// (derived from NAll) are rejected and the connection dropped, so one
// misbehaving client cannot grow server memory.
const (
	opHello    = 0x01 // client → server: f64 a, f64 rcut
	opEval     = 0x02 // client → server: NAll species bytes
	opStats    = 0x03 // client → server: empty
	opHello2   = 0x04 // client → server: f64 a, f64 rcut, u8 max protocol version
	opEval2    = 0x05 // client → server: 16-byte trace context, NAll species bytes
	opHelloOK  = 0x81 // server → client: u32 NAll
	opResult   = 0x82 // server → client: f64 initial, 8×f64 final, u8 valid mask
	opStatsOK  = 0x83 // server → client: JSON Stats
	opHelloOK2 = 0x84 // server → client: u32 NAll, u8 negotiated protocol version
	opError    = 0x7f // server → client: u8 kind, message bytes
)

// Wire protocol versions. Version 1 is the original handshake (opHello/
// opHelloOK, opEval only). Version 2 adds the opHello2/opHelloOK2
// negotiation and the opEval2 frame carrying a 16-byte distributed-trace
// context ahead of the species bytes.
//
// Negotiation keeps old and new binaries interoperable in both
// directions: a v1 client sends the legacy 17-byte opHello and a v2
// server answers it with the legacy opHelloOK (the session simply runs
// at v1); a v2 client opens with opHello2, and when the server turns
// out to predate negotiation (it rejects the unknown hello with an
// error frame and closes), the client transparently redials at v1.
const (
	wireV1   = 1
	wireV2   = 2
	wireVMax = wireV2
)

// opError kinds.
const (
	errGeneric    = 0x00
	errCorruption = 0x01 // evaluation tripped a corruption tripwire
)

// minFrame bounds every pre-hello frame; after hello the bound grows to
// fit eval frames (1 + NAll bytes).
const minFrame = 64

// maxStatsFrame bounds the stats JSON a client will accept.
const maxStatsFrame = 1 << 20

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, refusing payloads beyond limit — the
// bounded-memory guarantee of the session.
func readFrame(r io.Reader, limit int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, errors.New("evalserve: empty frame")
	}
	if int(n) > limit {
		return nil, fmt.Errorf("evalserve: frame of %d bytes exceeds limit %d", n, limit)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func errorFrame(kind byte, msg string) []byte {
	p := make([]byte, 2+len(msg))
	p[0] = opError
	p[1] = kind
	copy(p[2:], msg)
	return p
}

func resultFrame(res Result) []byte {
	p := make([]byte, 1+8+8*8+1)
	p[0] = opResult
	binary.LittleEndian.PutUint64(p[1:], math.Float64bits(res.Initial))
	for k := 0; k < 8; k++ {
		binary.LittleEndian.PutUint64(p[9+8*k:], math.Float64bits(res.Final[k]))
	}
	var mask byte
	for k := 0; k < 8; k++ {
		if res.Valid[k] {
			mask |= 1 << k
		}
	}
	p[73] = mask
	return p
}

func decodeResult(p []byte) (Result, error) {
	if len(p) != 74 || p[0] != opResult {
		return Result{}, fmt.Errorf("evalserve: malformed result frame (%d bytes)", len(p))
	}
	var res Result
	res.Initial = math.Float64frombits(binary.LittleEndian.Uint64(p[1:]))
	for k := 0; k < 8; k++ {
		res.Final[k] = math.Float64frombits(binary.LittleEndian.Uint64(p[9+8*k:]))
		res.Valid[k] = p[73]&(1<<k) != 0
	}
	return res, nil
}

// --- Server side --------------------------------------------------------

// FrontendOptions tune a front-end's connection hygiene. The defaults
// protect the server: a half-open or silent client used to pin its
// handler goroutine and session buffers forever, so idle reaping is on
// unless explicitly disabled.
type FrontendOptions struct {
	// IdleTimeout bounds how long a session may sit between frames
	// before the server reaps the connection (default 2m; negative
	// disables reaping).
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply write, so a client that stops
	// reading cannot wedge a handler on a full socket buffer (default
	// 30s; negative disables).
	WriteTimeout time.Duration
}

func (o *FrontendOptions) applyDefaults() {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
}

// Frontend exposes a Server over TCP (or any net.Listener). Each accepted
// connection is one independent client session; the shared Server behind
// it is what makes cross-client deduplication and batching happen.
type Frontend struct {
	srv  *Server
	ln   net.Listener
	opts FrontendOptions
	wg   sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts accepting wire-protocol sessions on the listener, serving
// them from srv with default connection hygiene. It returns immediately;
// Close shuts the front-end down. The Frontend does not own srv —
// closing the Frontend leaves the Server (and its in-process callers)
// running.
func Serve(srv *Server, ln net.Listener) *Frontend {
	return ServeOptions(srv, ln, FrontendOptions{})
}

// ServeOptions is Serve with explicit connection-hygiene options.
func ServeOptions(srv *Server, ln net.Listener, opts FrontendOptions) *Frontend {
	opts.applyDefaults()
	f := &Frontend{srv: srv, ln: ln, opts: opts, conns: map[net.Conn]struct{}{}}
	f.wg.Add(1)
	go f.acceptLoop()
	return f
}

// Addr returns the bound listener address (useful with ":0" listeners).
func (f *Frontend) Addr() net.Addr { return f.ln.Addr() }

func (f *Frontend) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conns[conn] = struct{}{}
		f.mu.Unlock()
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.handle(conn)
			f.mu.Lock()
			delete(f.conns, conn)
			f.mu.Unlock()
		}()
	}
}

// Close stops accepting, drops every live session, and waits for the
// handlers to return. The underlying Server is left running.
func (f *Frontend) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	conns := make([]net.Conn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	err := f.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	f.wg.Wait()
	return err
}

// Drain is the graceful sibling of Close: it stops accepting new
// sessions immediately (connection attempts are refused once the
// listener closes) but gives in-flight sessions up to timeout to finish
// on their own — a KMC client holds its session for the life of its
// run, so draining a serve node means letting attached simulations
// disconnect at their own pace. Sessions still live at the deadline are
// force-closed. It returns the number of sessions that had to be
// forced, so callers can report an imperfect drain while still shutting
// down cleanly.
func (f *Frontend) Drain(timeout time.Duration) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, nil
	}
	f.closed = true
	f.mu.Unlock()
	lnErr := f.ln.Close()

	done := make(chan struct{})
	go func() { f.wg.Wait(); close(done) }()
	select {
	case <-done:
		return 0, lnErr
	case <-time.After(timeout):
	}
	f.mu.Lock()
	conns := make([]net.Conn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	<-done
	return len(conns), lnErr
}

// handle runs one client session to completion. Every frame read is
// armed with the idle deadline and every reply write with the write
// deadline, so a half-open peer expires instead of pinning the handler
// goroutine and its buffers forever.
func (f *Frontend) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	tb := f.srv.Tables()

	armRead := func() {
		if f.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(f.opts.IdleTimeout))
		}
	}
	armWrite := func() {
		if f.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
		}
	}

	fail := func(kind byte, msg string) {
		armWrite()
		writeFrame(w, errorFrame(kind, msg))
		w.Flush()
	}

	// The session opens with a hello declaring the client's geometry —
	// legacy 17-byte opHello (the session runs at v1) or the 18-byte
	// opHello2 carrying the client's highest protocol version, answered
	// with the server's pick of min(client max, wireVMax).
	armRead()
	p, err := readFrame(r, minFrame)
	if err != nil {
		return
	}
	ver := wireV1
	switch {
	case len(p) == 17 && p[0] == opHello:
	case len(p) == 18 && p[0] == opHello2:
		ver = int(p[17])
		if ver > wireVMax {
			ver = wireVMax
		}
		if ver < wireV1 {
			fail(errGeneric, fmt.Sprintf("unsupported protocol version %d", p[17]))
			return
		}
	default:
		fail(errGeneric, "expected hello frame")
		return
	}
	a := math.Float64frombits(binary.LittleEndian.Uint64(p[1:]))
	rcut := math.Float64frombits(binary.LittleEndian.Uint64(p[9:]))
	if a != tb.A || rcut != tb.Rcut {
		fail(errGeneric, fmt.Sprintf("geometry mismatch: server has a=%v rcut=%v, client sent a=%v rcut=%v", tb.A, tb.Rcut, a, rcut))
		return
	}
	var ok []byte
	if ver >= wireV2 {
		ok = make([]byte, 6)
		ok[0] = opHelloOK2
		binary.LittleEndian.PutUint32(ok[1:], uint32(tb.NAll))
		ok[5] = byte(ver)
	} else {
		ok = make([]byte, 5)
		ok[0] = opHelloOK
		binary.LittleEndian.PutUint32(ok[1:], uint32(tb.NAll))
	}
	armWrite()
	if err := writeFrame(w, ok); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}

	// Post-hello frames are bounded by the eval frame size (plus the
	// trace context a v2 session may prepend).
	limit := 1 + tb.NAll
	if ver >= wireV2 {
		limit += trace.ContextSize
	}
	if limit < minFrame {
		limit = minFrame
	}
	for {
		armRead()
		p, err := readFrame(r, limit)
		if err != nil {
			return // disconnect, idle expiry, or oversized frame
		}
		switch p[0] {
		case opEval, opEval2:
			body := p[1:]
			var tctx trace.Context
			if p[0] == opEval2 {
				if ver < wireV2 {
					fail(errGeneric, "eval frame with trace context on a v1 session")
					return
				}
				if len(body) < trace.ContextSize {
					fail(errGeneric, "truncated trace context")
					return
				}
				tctx = trace.Decode(body[:trace.ContextSize])
				body = body[trace.ContextSize:]
			}
			if len(body) != tb.NAll {
				fail(errGeneric, fmt.Sprintf("eval frame carries %d species, want %d", len(body), tb.NAll))
				return
			}
			res, err := f.srv.EvaluateTraced(tb.DecodeEnv(body), tctx)
			if err != nil {
				kind := byte(errGeneric)
				var ce *fault.CorruptionError
				if errors.As(err, &ce) {
					kind = errCorruption
				}
				fail(kind, err.Error())
				if kind == errGeneric {
					return // server closed or malformed: end the session
				}
				continue // corruption: report, let the client decide
			}
			armWrite()
			if err := writeFrame(w, resultFrame(res)); err != nil {
				return
			}
		case opStats:
			js, err := json.Marshal(f.srv.Stats())
			if err != nil {
				fail(errGeneric, err.Error())
				return
			}
			out := make([]byte, 1+len(js))
			out[0] = opStatsOK
			copy(out[1:], js)
			armWrite()
			if err := writeFrame(w, out); err != nil {
				return
			}
		default:
			fail(errGeneric, fmt.Sprintf("unknown opcode %#x", p[0]))
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// --- Client side --------------------------------------------------------

// DialConfig tunes a wire client beyond the required geometry. The zero
// value reproduces the pre-fleet behaviour: plain net.Dial, no
// deadlines.
type DialConfig struct {
	// Timeout bounds every wire interaction — the dial, the hello
	// exchange, and each later request/reply round trip. On expiry the
	// request fails with a *fault.TransportError and the session is
	// marked broken (a late reply would desynchronise the
	// request/reply stream). Zero means no deadline.
	Timeout time.Duration
	// Dialer replaces the TCP dial — the hook through which tests
	// interpose ConnChaos faults. Nil means net.Dial("tcp", addr).
	Dialer func(addr string) (net.Conn, error)
	// Protocol pins the highest wire protocol version the client offers
	// (0 = newest known, wireVMax). Sessions negotiated down to version
	// 1 — by this pin, by the server's answer, or by falling back to a
	// pre-negotiation server — silently drop trace contexts from
	// EvaluateTraced, which is the interop contract: tracing degrades,
	// requests do not.
	Protocol int
}

// Client is a wire-protocol connection to a tkmc-serve front-end. It
// implements kmc.Model, so an engine can be pointed at a remote
// evaluation service exactly as it would at an in-process potential. One
// Client serializes its requests (the session is a simple request/reply
// stream); open several Clients for concurrency — the server coalesces
// and deduplicates across all of them.
//
// Any transport failure — including a deadline expiry — marks the
// session broken: the request/reply framing can no longer be trusted,
// so every later call fails fast with a *fault.TransportError and the
// owner must redial (the FleetClient does this automatically).
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	tb      *encoding.Tables
	addr    string
	timeout time.Duration
	ver     int // negotiated wire protocol version
	broken  bool
}

// Dial connects to a front-end and performs the hello handshake for the
// given lattice geometry. The returned Client's Tables are constructed
// locally — the handshake guarantees they match the server's.
func Dial(addr string, a, rcut float64) (*Client, error) {
	return DialConfig{}.Dial(addr, a, rcut)
}

// Dial connects with the config's deadlines and dialer. Transport
// failures — including the handshake timing out — return a
// *fault.TransportError; a geometry refusal by the server returns a
// plain (non-retryable) error.
//
// Unless Protocol pins otherwise, the client offers the newest wire
// protocol via opHello2. A server that predates negotiation rejects the
// unknown hello with an error frame and closes the session, so on any
// hello refusal the client redials once at version 1 — old servers get
// a v1 session transparently, and a genuine refusal (e.g. geometry
// mismatch) reproduces identically on the retry and surfaces as the
// final error.
func (dc DialConfig) Dial(addr string, a, rcut float64) (*Client, error) {
	dial := dc.Dialer
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			if dc.Timeout > 0 {
				return net.DialTimeout("tcp", addr, dc.Timeout)
			}
			return net.Dial("tcp", addr)
		}
	}
	tb := encoding.New(a, rcut)
	maxVer := dc.Protocol
	if maxVer <= 0 || maxVer > wireVMax {
		maxVer = wireVMax
	}
	if maxVer >= wireV2 {
		c, refused, err := dc.dialVersion(dial, tb, addr, a, rcut, maxVer)
		if !refused {
			return c, err
		}
	}
	c, _, err := dc.dialVersion(dial, tb, addr, a, rcut, wireV1)
	return c, err
}

// dialVersion performs one dial + hello exchange offering the given
// protocol version. refused reports that the server answered the hello
// with an error frame — at version >= 2 the caller falls back to a
// version-1 dial (the server may predate negotiation); at version 1 the
// refusal is final.
func (dc DialConfig) dialVersion(dial func(string) (net.Conn, error), tb *encoding.Tables, addr string, a, rcut float64, ver int) (*Client, bool, error) {
	conn, err := dial(addr)
	if err != nil {
		return nil, false, &fault.TransportError{Op: "dial", Addr: addr, Err: err}
	}
	c := &Client{
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
		tb:      tb,
		addr:    addr,
		timeout: dc.Timeout,
		ver:     wireV1,
	}
	c.arm()
	var hello []byte
	if ver >= wireV2 {
		hello = make([]byte, 18)
		hello[0] = opHello2
		hello[17] = byte(ver)
	} else {
		hello = make([]byte, 17)
		hello[0] = opHello
	}
	binary.LittleEndian.PutUint64(hello[1:], math.Float64bits(a))
	binary.LittleEndian.PutUint64(hello[9:], math.Float64bits(rcut))
	if err := writeFrame(c.w, hello); err != nil {
		conn.Close()
		return nil, false, &fault.TransportError{Op: "hello", Addr: addr, Err: err}
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, false, &fault.TransportError{Op: "hello", Addr: addr, Err: err}
	}
	p, err := readFrame(c.r, maxStatsFrame)
	if err != nil {
		conn.Close()
		return nil, false, &fault.TransportError{Op: "hello", Addr: addr, Err: err}
	}
	c.disarm()
	if p[0] == opError {
		conn.Close()
		return nil, true, fmt.Errorf("evalserve: server refused hello: %s", p[2:])
	}
	switch {
	case len(p) == 5 && p[0] == opHelloOK:
		// Legacy acknowledgement: the session runs at v1 regardless of
		// what was offered.
	case len(p) == 6 && p[0] == opHelloOK2 && ver >= wireV2:
		if got := int(p[5]); got >= wireV1 && got <= ver {
			c.ver = got
		} else {
			conn.Close()
			return nil, false, &fault.TransportError{Op: "hello", Addr: addr,
				Err: fmt.Errorf("evalserve: server negotiated unusable protocol version %d", p[5])}
		}
	default:
		conn.Close()
		return nil, false, &fault.TransportError{Op: "hello", Addr: addr,
			Err: errors.New("evalserve: malformed hello reply")}
	}
	if n := int(binary.LittleEndian.Uint32(p[1:])); n != c.tb.NAll {
		conn.Close()
		return nil, false, fmt.Errorf("evalserve: server NAll %d != local %d", n, c.tb.NAll)
	}
	return c, false, nil
}

// Protocol returns the session's negotiated wire protocol version.
func (c *Client) Protocol() int { return c.ver }

// arm sets the connection deadline for one wire interaction (no-op
// without a configured timeout).
func (c *Client) arm() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

// disarm clears the interaction deadline.
func (c *Client) disarm() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
}

// fail marks the session broken and wraps the failure (mu held).
func (c *Client) fail(op string, err error) *fault.TransportError {
	c.broken = true
	c.conn.Close()
	return &fault.TransportError{Op: op, Addr: c.addr, Err: err}
}

// Tables returns the locally reconstructed encoding tables (kmc.Model).
func (c *Client) Tables() *encoding.Tables { return c.tb }

// Addr returns the remote endpoint this session was dialed to.
func (c *Client) Addr() string { return c.addr }

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	return c.conn.Close()
}

// roundTrip sends one request frame and returns the reply payload,
// arming the per-request deadline and converting every transport
// failure into a session-breaking typed error (mu held by caller).
func (c *Client) roundTrip(op string, req []byte) ([]byte, error) {
	if c.broken {
		return nil, &fault.TransportError{Op: op, Addr: c.addr,
			Err: errors.New("evalserve: session broken by an earlier transport failure")}
	}
	c.arm()
	defer c.disarm()
	if err := writeFrame(c.w, req); err != nil {
		return nil, c.fail(op, err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(op, err)
	}
	p, err := readFrame(c.r, maxStatsFrame)
	if err != nil {
		return nil, c.fail(op, err)
	}
	return p, nil
}

// Evaluate submits one vacancy system and returns the exact f64 result.
// Transport failures (connection loss, deadline expiry, truncated or
// malformed frames) come back as *fault.TransportError — retryable, by
// the idempotency of the content-addressed protocol; corruption reported
// by the server comes back as *fault.CorruptionError — not retryable.
func (c *Client) Evaluate(vet encoding.VET) (Result, error) {
	return c.EvaluateTraced(vet, trace.Context{})
}

// EvaluateTraced is Evaluate carrying a distributed-trace context. On a
// version-2 session a valid context rides the eval frame, so the
// serving node's spans (cache hit/miss, batch fill, GEMM time) join the
// caller's trace; on a version-1 session — an old server, or a pinned
// Protocol — the context is silently dropped and the request proceeds
// untraced, which is the interop contract.
func (c *Client) EvaluateTraced(vet encoding.VET, tctx trace.Context) (Result, error) {
	if len(vet) != c.tb.NAll {
		return Result{}, fmt.Errorf("evalserve: VET length %d, want %d", len(vet), c.tb.NAll)
	}
	var req []byte
	if tctx.Valid() && c.ver >= wireV2 {
		req = make([]byte, 1+trace.ContextSize+c.tb.NAll)
		req[0] = opEval2
		tctx.Encode(req[1:])
		copy(req[1+trace.ContextSize:], c.tb.EncodeEnv(vet))
	} else {
		req = make([]byte, 1+c.tb.NAll)
		req[0] = opEval
		copy(req[1:], c.tb.EncodeEnv(vet))
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.roundTrip("eval", req)
	if err != nil {
		return Result{}, err
	}
	if p[0] == opError {
		if len(p) >= 2 && p[1] == errCorruption {
			return Result{}, &fault.CorruptionError{Subsystem: "evalserve", Detail: string(p[2:])}
		}
		return Result{}, fmt.Errorf("evalserve: server error: %s", p[2:])
	}
	res, err := decodeResult(p)
	if err != nil {
		// A garbled result frame is a transport-integrity failure (e.g.
		// chaos truncation), not a server decision: break the session so
		// the owner redials instead of trusting a desynced stream.
		return Result{}, c.fail("eval", err)
	}
	return res, nil
}

// HopEnergies implements kmc.Model over the wire. Corruption reported by
// the server re-panics as *fault.CorruptionError, preserving engine-layer
// recovery; every other failure — transport loss, deadline expiry, a
// server-side refusal — panics as *fault.TransportError, which the
// engine layers convert into a typed, retryable error for the
// supervisor (instead of the opaque panic this path used to raise).
func (c *Client) HopEnergies(vet encoding.VET) (initial float64, final [8]float64, valid [8]bool) {
	res, err := c.Evaluate(vet)
	if err != nil {
		panic(asEnginePanic(err, c.addr))
	}
	return res.Initial, res.Final, res.Valid
}

// asEnginePanic shapes an evaluation error for the engine recovery
// layers: corruption stays corruption, anything else becomes a typed
// transport failure.
func asEnginePanic(err error, addr string) error {
	var ce *fault.CorruptionError
	if errors.As(err, &ce) {
		return ce
	}
	var te *fault.TransportError
	if errors.As(err, &te) {
		return te
	}
	return &fault.TransportError{Op: "eval", Addr: addr, Err: err}
}

// ServerStats fetches the service counters over the wire.
func (c *Client) ServerStats() (Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.roundTrip("stats", []byte{opStats})
	if err != nil {
		return Stats{}, err
	}
	if p[0] == opError {
		return Stats{}, fmt.Errorf("evalserve: server error: %s", p[2:])
	}
	if p[0] != opStatsOK {
		return Stats{}, c.fail("stats", errors.New("evalserve: malformed stats reply"))
	}
	var st Stats
	if err := json.Unmarshal(p[1:], &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
