package nnp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"tensorkmc/internal/fault"
	"tensorkmc/internal/feature"
	"tensorkmc/internal/lattice"
)

// Binary potential file format ("TKMCPOT1"): little-endian, no external
// dependencies, stable across platforms. Layout:
//
//	magic [8]byte
//	rcut float64, nEl int32, nPQ int32, (p,q) pairs float64×2 each
//	hasNorm uint8; if 1: dim float64 means then dim float64 stds
//	eref float64 × NumElements
//	per element: nSizes int32, sizes..., per layer: W data, B data
const potentialMagic = "TKMCPOT1"

// Save writes the potential to w.
func (p *Potential) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(potentialMagic); err != nil {
		return err
	}
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := write(p.Desc.Rcut); err != nil {
		return err
	}
	if err := write(int32(p.Desc.NEl)); err != nil {
		return err
	}
	if err := write(int32(len(p.Desc.PQ))); err != nil {
		return err
	}
	for _, s := range p.Desc.PQ {
		if err := write(s.P); err != nil {
			return err
		}
		if err := write(s.Q); err != nil {
			return err
		}
	}
	hasNorm := uint8(0)
	if p.FeatMean != nil {
		hasNorm = 1
	}
	if err := write(hasNorm); err != nil {
		return err
	}
	if hasNorm == 1 {
		if err := write(p.FeatMean); err != nil {
			return err
		}
		if err := write(p.FeatStd); err != nil {
			return err
		}
	}
	if err := write(p.ERef[:]); err != nil {
		return err
	}
	for _, net := range p.Nets {
		if err := write(int32(len(net.Sizes))); err != nil {
			return err
		}
		for _, s := range net.Sizes {
			if err := write(int32(s)); err != nil {
				return err
			}
		}
		for _, l := range net.Layers {
			if err := write(l.W.Data); err != nil {
				return err
			}
			if err := write(l.B); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a potential written by Save.
func Load(r io.Reader) (*Potential, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(potentialMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nnp: reading magic: %w", err)
	}
	if string(magic) != potentialMagic {
		return nil, fmt.Errorf("nnp: bad magic %q", magic)
	}
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var rcut float64
	var nEl, nPQ int32
	if err := read(&rcut); err != nil {
		return nil, err
	}
	if math.IsNaN(rcut) || rcut <= 0 || rcut > 1e3 {
		return nil, fmt.Errorf("nnp: implausible cutoff %v", rcut)
	}
	if err := read(&nEl); err != nil {
		return nil, err
	}
	if err := read(&nPQ); err != nil {
		return nil, err
	}
	if nEl != lattice.NumElements {
		return nil, fmt.Errorf("nnp: potential has %d elements, this build supports %d", nEl, lattice.NumElements)
	}
	if nPQ <= 0 || nPQ > 4096 {
		return nil, fmt.Errorf("nnp: implausible channel count %d", nPQ)
	}
	pq := make([]feature.PQ, nPQ)
	for i := range pq {
		if err := read(&pq[i].P); err != nil {
			return nil, err
		}
		if err := read(&pq[i].Q); err != nil {
			return nil, err
		}
		// NewDescriptor panics on invalid hyper-parameters; a corrupt
		// file must error instead.
		if math.IsNaN(pq[i].P) || math.IsNaN(pq[i].Q) || pq[i].P <= 0 || pq[i].Q <= 0 {
			return nil, fmt.Errorf("nnp: invalid (p,q) pair %d: %+v", i, pq[i])
		}
	}
	desc := feature.NewDescriptor(pq, int(nEl), rcut)
	p := &Potential{Desc: desc}
	var hasNorm uint8
	if err := read(&hasNorm); err != nil {
		return nil, err
	}
	if hasNorm > 1 {
		return nil, fmt.Errorf("nnp: invalid normalisation flag %d", hasNorm)
	}
	if hasNorm == 1 {
		p.FeatMean = make([]float64, desc.Dim())
		p.FeatStd = make([]float64, desc.Dim())
		if err := read(p.FeatMean); err != nil {
			return nil, err
		}
		if err := read(p.FeatStd); err != nil {
			return nil, err
		}
	}
	if err := read(p.ERef[:]); err != nil {
		return nil, err
	}
	for e := range p.Nets {
		var nSizes int32
		if err := read(&nSizes); err != nil {
			return nil, err
		}
		if nSizes < 2 || nSizes > 64 {
			return nil, fmt.Errorf("nnp: implausible layer count %d", nSizes)
		}
		sizes := make([]int, nSizes)
		for i := range sizes {
			var s int32
			if err := read(&s); err != nil {
				return nil, err
			}
			if s <= 0 || s > 1<<20 {
				return nil, fmt.Errorf("nnp: implausible layer size %d", s)
			}
			sizes[i] = int(s)
		}
		if sizes[0] != desc.Dim() {
			return nil, fmt.Errorf("nnp: network input %d != descriptor dim %d", sizes[0], desc.Dim())
		}
		// Bound the weight allocation each layer implies: a corrupt header
		// with two 2^20 layer sizes would otherwise request a terabyte
		// matrix before any payload byte is read.
		const maxLayerParams = 1 << 24
		for l := 0; l+1 < len(sizes); l++ {
			if sizes[l]*sizes[l+1] > maxLayerParams {
				return nil, fmt.Errorf("nnp: layer %d needs %d weights (limit %d)", l, sizes[l]*sizes[l+1], maxLayerParams)
			}
		}
		net := &Network{Sizes: sizes}
		for l := 0; l+1 < len(sizes); l++ {
			layer := Layer{
				W:    NewMatrix(sizes[l], sizes[l+1]),
				B:    make([]float64, sizes[l+1]),
				Relu: l+2 < len(sizes),
			}
			if err := read(layer.W.Data); err != nil {
				return nil, err
			}
			if err := read(layer.B); err != nil {
				return nil, err
			}
			net.Layers = append(net.Layers, layer)
		}
		p.Nets[e] = net
	}
	// A well-formed potential ends exactly after the last network; extra
	// bytes mean a corrupt or foreign file.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("nnp: trailing garbage after potential payload")
	}
	return p, nil
}

// SaveFile writes the potential to path via a temp file and atomic
// rename, so a crash mid-write can never truncate an existing good file.
func (p *Potential) SaveFile(path string) error {
	return fault.WriteFileAtomic(path, false, p.Save)
}

// LoadFile reads a potential from path.
func LoadFile(path string) (*Potential, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
