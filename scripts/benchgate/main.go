// Command benchgate is the CI bench-smoke gate: it reads the
// machine-readable bench reports (BENCH_evalserve.json from the
// evaluation-service benchmarks, BENCH_traj.json from the
// trajectory-recording bench) and fails if the corresponding machinery
// has regressed to its degenerate states —
//
//   - mean drained-batch occupancy ≤ 1.5: speculation is no longer
//     filling batches, so every fused dispatch goes out (nearly) width-1
//     and the wide-GEMM amortisation is dead weight;
//   - width-64 fused evaluation slower per system than width-1: the wide
//     kernel has lost to its own overhead, i.e. batching actively hurts;
//   - speculative warm-hit rate < 0.5: the predictor is guessing wrong
//     more often than right, so speculation is burning evaluation work
//     without filling batches with anything useful;
//   - trajectory-recording overhead > 5%: the event log has fallen off
//     the buffered fast path and is taxing every hop;
//   - bytes per logged event outside (0, 512]: the wire encoding has
//     bloated (or the report is nonsense);
//   - distributed-tracing overhead > 2% of a work-bearing (cache-miss)
//     eval request: the span machinery has structurally regressed — e.g.
//     spans started flushing synchronously instead of appending to the
//     flight-recorder ring.
//
// The thresholds are deliberately loose screens against structural
// regression, not performance SLOs: CI machines are noisy, so the gate
// only trips when the machinery stops working at all, never on ordinary
// variance. Usage: go run ./scripts/benchgate [report.json ...] — with
// no arguments it gates both default reports. Each report's kind is
// detected from its keys.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Degenerate-state thresholds (see package comment). wideTolerance
// absorbs shared-runner noise on the width comparison: the wide kernel
// must at minimum not be slower than width-1 beyond the run-to-run
// variance band; a genuine regression (streaming pipeline broken, tiles
// falling out of cache) shows up as 1.5–2× and trips regardless.
// minSpecHitRate is the coin-flip line: a predictor below 0.5 is worse
// than guessing and speculation should be treated as broken.
// maxRecordOverhead is the trajectory budget: recording rides the hot
// hop path, so anything past a few percent means the buffered writer or
// the varint encoding has structurally regressed. maxBytesPerEvent is a
// sanity bound on the TKMCTRJ1 encoding — a hop frame is ~20 bytes and
// even a snapshot-bearing log averages far under this.
// maxTraceOverhead is the distributed-tracing budget: a traced eval
// request adds two ring records client-side and one server-side, a
// fixed sub-µs tax that must stay ≤ 2% of the cache-miss request it
// rides on (the batch-pipeline evaluation — the request that carries
// the simulation's work).
const (
	minOccupancy      = 1.5
	wideTolerance     = 1.10
	minSpecHitRate    = 0.5
	maxRecordOverhead = 0.05
	maxBytesPerEvent  = 512.0
	maxTraceOverhead  = 0.02
)

func main() {
	paths := os.Args[1:]
	if len(paths) == 0 {
		paths = []string{"BENCH_evalserve.json", "BENCH_traj.json", "BENCH_trace.json"}
	}
	ok := true
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			fail("reading report: %v", err)
		}
		var report map[string]float64
		if err := json.Unmarshal(raw, &report); err != nil {
			fail("parsing %s: %v", path, err)
		}
		switch {
		case hasKey(report, "record_overhead"):
			ok = gateTraj(path, report) && ok
		case hasKey(report, "trace_ns_per_request"):
			ok = gateTrace(path, report) && ok
		default:
			ok = gateEvalserve(path, report) && ok
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// need looks a key up in the report, collecting absences into missing
// so one CI run reports the full shopping list instead of one missing
// key per attempt.
func need(report map[string]float64, missing *[]string, key string) float64 {
	v, ok := report[key]
	if !ok {
		*missing = append(*missing, key)
	}
	return v
}

// gateEvalserve screens the batching-and-speculation report.
func gateEvalserve(path string, report map[string]float64) bool {
	var missing []string
	occ := need(report, &missing, "batch_occupancy_mean")
	w1 := need(report, &missing, "batch_width_1_ns_per_system")
	w64 := need(report, &missing, "batch_width_64_ns_per_system")
	hit := need(report, &missing, "spec_hit_rate")
	if len(missing) > 0 {
		fail("%s missing %s — run the evalserve benches first "+
			"(go test -bench 'EvalSpeculativeOccupancy|EvalBatchWidth' -benchtime=1x .)",
			path, strings.Join(missing, ", "))
	}

	ok := true
	if occ <= minOccupancy {
		fmt.Fprintf(os.Stderr, "FAIL: mean batch occupancy %.2f ≤ %.1f — speculative batch filling is not working\n",
			occ, minOccupancy)
		ok = false
	}
	if w64 >= wideTolerance*w1 {
		fmt.Fprintf(os.Stderr, "FAIL: width-64 fused evaluation (%.0f ns/system) is slower than width-1 (%.0f ns/system) beyond the %.0f%% noise band\n",
			w64, w1, 100*(wideTolerance-1))
		ok = false
	}
	if hit < minSpecHitRate {
		fmt.Fprintf(os.Stderr, "FAIL: speculative warm-hit rate %.3f < %.1f — the hop predictor is worse than a coin flip\n",
			hit, minSpecHitRate)
		ok = false
	}
	if ok {
		fmt.Printf("benchgate ok (%s): occupancy %.2f (> %.1f), width-64 %.0f ns/system vs width-1 %.0f ns/system (%.2fx, tolerance %.2fx), spec hit rate %.3f (≥ %.1f)\n",
			path, occ, minOccupancy, w64, w1, w1/w64, wideTolerance, hit, minSpecHitRate)
	}
	return ok
}

// gateTraj screens the trajectory-recording report.
func gateTraj(path string, report map[string]float64) bool {
	var missing []string
	overhead := need(report, &missing, "record_overhead")
	perEvent := need(report, &missing, "bytes_per_event")
	if len(missing) > 0 {
		fail("%s missing %s — run the trajectory bench first "+
			"(go test -bench TrajRecordOverhead -benchtime=1x .)",
			path, strings.Join(missing, ", "))
	}

	ok := true
	if overhead > maxRecordOverhead {
		fmt.Fprintf(os.Stderr, "FAIL: trajectory recording overhead %.1f%% > %.0f%% — the event log is taxing the hot hop path\n",
			100*overhead, 100*maxRecordOverhead)
		ok = false
	}
	if perEvent <= 0 || perEvent > maxBytesPerEvent {
		fmt.Fprintf(os.Stderr, "FAIL: %.1f bytes per logged event outside (0, %.0f] — the TKMCTRJ1 encoding has bloated\n",
			perEvent, maxBytesPerEvent)
		ok = false
	}
	if ok {
		fmt.Printf("benchgate ok (%s): recording overhead %.2f%% (≤ %.0f%%), %.1f B/event (≤ %.0f)\n",
			path, 100*overhead, 100*maxRecordOverhead, perEvent, maxBytesPerEvent)
	}
	return ok
}

// hasKey reports whether the report carries the kind-detecting key.
func hasKey(report map[string]float64, key string) bool {
	_, ok := report[key]
	return ok
}

// gateTrace screens the distributed-tracing report.
func gateTrace(path string, report map[string]float64) bool {
	var missing []string
	overhead := need(report, &missing, "trace_overhead")
	traceNs := need(report, &missing, "trace_ns_per_request")
	missNs := need(report, &missing, "miss_ns_per_request")
	if len(missing) > 0 {
		fail("%s missing %s — run the tracing bench first "+
			"(go test -bench TraceRequestOverhead -benchtime=1x .)",
			path, strings.Join(missing, ", "))
	}

	ok := true
	if overhead > maxTraceOverhead {
		fmt.Fprintf(os.Stderr, "FAIL: per-request tracing overhead %.2f%% > %.0f%% — the span machinery is taxing the eval path\n",
			100*overhead, 100*maxTraceOverhead)
		ok = false
	}
	if traceNs <= 0 || missNs <= 0 {
		fmt.Fprintf(os.Stderr, "FAIL: nonsense tracing report (%.1f ns trace tax, %.1f ns miss request)\n",
			traceNs, missNs)
		ok = false
	}
	if ok {
		fmt.Printf("benchgate ok (%s): tracing tax %.0f ns/request = %.3f%% of a %.2f ms miss request (≤ %.0f%%)\n",
			path, traceNs, 100*overhead, missNs/1e6, 100*maxTraceOverhead)
	}
	return ok
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
