package rng

import "testing"

// TestChildSeedGolden pins ChildSeed and the derived stream's leading
// outputs to literal values. Ensemble replicas embed these seeds in
// child decks; a platform or refactor that shifts them silently breaks
// cross-version reproducibility, so the values are frozen here.
func TestChildSeedGolden(t *testing.T) {
	wantSeeds := []uint64{
		0xfdfb0fb268868252,
		0x6a9af7ed1aef93a3,
		0x5fe8f0640313dcf0,
		0xc74cec52bf308ee9,
	}
	for id, want := range wantSeeds {
		if got := ChildSeed(42, uint64(id)); got != want {
			t.Errorf("ChildSeed(42, %d) = %#016x, want %#016x", id, got, want)
		}
	}
	if got, want := ChildSeed(7, 1023), uint64(0x0d88b0caa44a121e); got != want {
		t.Errorf("ChildSeed(7, 1023) = %#016x, want %#016x", got, want)
	}

	wantDraws := []uint64{
		0x58bc36e4ef23bff4,
		0xaedee7595326706b,
		0x22696cb133141aa9,
		0x008d9574f35be808,
	}
	r := Derive(42, 0)
	for i, want := range wantDraws {
		if got := r.Uint64(); got != want {
			t.Errorf("Derive(42, 0) draw %d = %#016x, want %#016x", i, got, want)
		}
	}
}

// TestChildSeedIsPure checks that deriving a child never perturbs any
// existing stream and is order-independent — the property Split lacks
// and fan-out across processes requires.
func TestChildSeedIsPure(t *testing.T) {
	a := ChildSeed(99, 5)
	_ = ChildSeed(99, 6)
	if b := ChildSeed(99, 5); a != b {
		t.Fatalf("ChildSeed not pure: %#x vs %#x", a, b)
	}
	r := New(99)
	before := r.State()
	_ = Derive(99, 0)
	if r.State() != before {
		t.Fatal("Derive perturbed an existing stream")
	}
}

// TestDerivedStreamsDisjoint verifies K=1024 derived streams produce
// pairwise-disjoint leading sequences: no two replicas may share even a
// prefix of their trajectory randomness.
func TestDerivedStreamsDisjoint(t *testing.T) {
	const streams = 1024
	const draws = 8
	seen := make(map[uint64]int, streams*draws)
	seeds := make(map[uint64]bool, streams)
	for id := uint64(0); id < streams; id++ {
		seed := ChildSeed(1234, id)
		if seeds[seed] {
			t.Fatalf("duplicate child seed %#x at id %d", seed, id)
		}
		seeds[seed] = true
		r := Derive(1234, id)
		for d := 0; d < draws; d++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %d and %d share output %#x", prev, id, v)
			}
			seen[v] = int(id)
		}
	}
}
