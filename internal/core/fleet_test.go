package core

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tensorkmc/internal/eam"
	"tensorkmc/internal/encoding"
	"tensorkmc/internal/evalserve"
	"tensorkmc/internal/feature"
	"tensorkmc/internal/kmc"
	"tensorkmc/internal/nnp"
	"tensorkmc/internal/rng"
	"tensorkmc/internal/units"
)

// startServeNodes boots n TCP serve nodes whose backends are
// bit-identical to the engine's local evaluator for the given config —
// the invariant the whole fleet design rests on.
func startServeNodes(t *testing.T, n int, cfg Config) []string {
	t.Helper()
	a, rcut := cfg.LatticeConstant, cfg.Cutoff
	if a == 0 {
		a = units.LatticeConstantFe
	}
	if rcut == 0 {
		rcut = units.CutoffStandard
	}
	tb := encoding.New(a, rcut)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		var be evalserve.Backend
		switch cfg.Potential {
		case NNP:
			be = evalserve.NewFusionBackend(cfg.Net, tb, evalserve.F64)
		default: // EAM — mirror core.New exactly
			pot := eam.New(eam.Default())
			be = evalserve.NewModelBackend(func() kmc.Model {
				return eam.NewFastRegionEvaluator(pot, tb)
			}, 2)
		}
		srv := evalserve.New(be, evalserve.Options{Capacity: 1 << 12})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fe := evalserve.Serve(srv, ln)
		addrs[i] = fe.Addr().String()
		killNodes.register(addrs[i], func() { fe.Close() })
		t.Cleanup(func() { fe.Close(); srv.Close() })
	}
	return addrs
}

// nodeKillRegistry lets a test kill a serve node by address — the
// "machine dies" primitive of the chaos matrix.
type nodeKillRegistry struct {
	mu sync.Mutex
	m  map[string]func()
}

var killNodes = &nodeKillRegistry{m: map[string]func(){}}

func (k *nodeKillRegistry) register(addr string, kill func()) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.m[addr] = kill
}

func (k *nodeKillRegistry) kill(addr string) {
	k.mu.Lock()
	kill := k.m[addr]
	k.mu.Unlock()
	if kill != nil {
		kill()
	}
}

// chunkedCheckpoint runs the simulation in the given chunks, invoking
// between(i) after chunk i, and returns the final checkpoint image.
// Both sides of a comparison must use the same chunking: the parallel
// engine reseeds per Run segment, so the chunk layout is part of the
// trajectory's identity.
func chunkedCheckpoint(t *testing.T, cfg Config, chunks []float64, between func(i int)) []byte {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, d := range chunks {
		if _, err := s.Run(d, nil); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if between != nil {
			between(i)
		}
	}
	path := filepath.Join(t.TempDir(), "final.tkmcbox")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestFleetChaosMatrix is the tentpole acceptance test: across
// {serial, parallel} × {EAM, NNP}, a 3-node fleet with one node killed
// mid-run must produce a final checkpoint byte-identical to the
// no-fleet, no-fault run. The engine must never observe a panic — only
// typed errors, retries and failover — and because every node returns
// exact-f64 energies, the kill can change nothing but wall-clock time.
func TestFleetChaosMatrix(t *testing.T) {
	nnpPot := nnp.NewPotential(feature.Standard(units.CutoffStandard), []int{feature.Standard(units.CutoffStandard).Dim(), 12, 1}, rng.New(9))
	cases := []struct {
		name   string
		cfg    Config
		chunks []float64
	}{
		{"serial-eam", Config{
			Cells: [3]int{10, 10, 10}, CuFraction: 0.0134, VacancyFraction: 0.002, Seed: 42,
		}, []float64{1e-7, 1e-7}},
		{"parallel-eam", Config{
			Cells: [3]int{16, 16, 16}, CuFraction: 0.03, VacancyFraction: 0.001, Seed: 5,
			Ranks: [3]int{2, 1, 1},
		}, []float64{2.5e-8, 2.5e-8}},
		{"serial-nnp", Config{
			Cells: [3]int{10, 10, 10}, CuFraction: 0.02, VacancyFraction: 0.001, Seed: 11,
			Potential: NNP, Net: nnpPot,
		}, []float64{5e-8, 5e-8}},
		{"parallel-nnp", Config{
			Cells: [3]int{10, 10, 10}, CuFraction: 0.02, VacancyFraction: 0.001, Seed: 13,
			Potential: NNP, Net: nnpPot, Ranks: [3]int{2, 1, 1},
		}, []float64{2e-8, 2e-8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseline := chunkedCheckpoint(t, tc.cfg, tc.chunks, nil)

			addrs := startServeNodes(t, 3, tc.cfg)
			cfg := tc.cfg
			cfg.EvalFleet = addrs
			cfg.EvalTimeout = 2 * time.Second
			// No fallback: the surviving replicas alone must absorb the
			// kill.
			cfg.EvalFallback = false
			served := chunkedCheckpoint(t, cfg, tc.chunks, func(i int) {
				if i == 0 {
					killNodes.kill(addrs[1])
				}
			})

			if !bytes.Equal(baseline, served) {
				t.Fatal("fleet run with mid-run node kill diverged from the single-process baseline")
			}
		})
	}
}

// TestFleetAsyncKillBitIdentical kills a node from a goroutine while a
// chunk is evaluating — the kill lands at an arbitrary point in the
// request stream, possibly mid-frame, and the checkpoint must still be
// byte-identical. This is the strongest statement of the degradation
// contract: WHEN a node dies cannot matter, only that replicas remain.
func TestFleetAsyncKillBitIdentical(t *testing.T) {
	cfg := Config{
		Cells: [3]int{10, 10, 10}, CuFraction: 0.0134, VacancyFraction: 0.002, Seed: 77,
	}
	chunks := []float64{2e-7}
	baseline := chunkedCheckpoint(t, cfg, chunks, nil)

	addrs := startServeNodes(t, 3, cfg)
	fcfg := cfg
	fcfg.EvalFleet = addrs
	fcfg.EvalTimeout = 2 * time.Second
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(3 * time.Millisecond)
		killNodes.kill(addrs[2])
	}()
	served := chunkedCheckpoint(t, fcfg, chunks, nil)
	wg.Wait()

	if !bytes.Equal(baseline, served) {
		t.Fatal("asynchronous node kill changed the trajectory")
	}
}

// TestFleetLocalFallbackBitIdentical: losing the ENTIRE fleet mid-run
// must degrade to the local evaluator without changing a byte — the
// simulation slows down, it does not die, and it does not fork.
func TestFleetLocalFallbackBitIdentical(t *testing.T) {
	cfg := Config{
		Cells: [3]int{10, 10, 10}, CuFraction: 0.0134, VacancyFraction: 0.002, Seed: 21,
	}
	chunks := []float64{1e-7, 1e-7}
	baseline := chunkedCheckpoint(t, cfg, chunks, nil)

	addrs := startServeNodes(t, 1, cfg)
	fcfg := cfg
	fcfg.EvalFleet = addrs
	fcfg.EvalTimeout = time.Second
	fcfg.EvalRetry = -1 // no per-node retries: fall back fast
	fcfg.EvalFallback = true
	served := chunkedCheckpoint(t, fcfg, chunks, func(i int) {
		if i == 0 {
			killNodes.kill(addrs[0]) // the whole fleet is gone
		}
	})

	if !bytes.Equal(baseline, served) {
		t.Fatal("local-fallback half of the run diverged from the baseline")
	}

	// Without a fallback the same outage must surface as a typed error
	// from Run — never a raw panic through the engine.
	addrs2 := startServeNodes(t, 1, cfg)
	ecfg := cfg
	ecfg.EvalFleet = addrs2
	ecfg.EvalTimeout = 500 * time.Millisecond
	ecfg.EvalRetry = -1
	ecfg.EvalFallback = false
	s, err := New(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(1e-8, nil); err != nil {
		t.Fatalf("healthy single-node fleet failed: %v", err)
	}
	killNodes.kill(addrs2[0])
	if _, err := s.Run(1e-7, nil); err == nil {
		t.Fatal("run with a dead fleet and no fallback reported success")
	}
}
