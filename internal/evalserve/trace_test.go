package evalserve

import (
	"bufio"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tensorkmc/internal/nnp"
	"tensorkmc/internal/telemetry"
	"tensorkmc/internal/telemetry/trace"
	"tensorkmc/internal/units"
)

// TestWireProtocolNegotiation pins the version matrix: a default client
// lands on v2 against a current server, a v1-pinned client gets a v1
// session that still serves correctly, and trace contexts only cross
// the wire on v2 sessions.
func TestWireProtocolNegotiation(t *testing.T) {
	set := telemetry.NewSet()
	pot, tb := smallPotential(60)
	srv := New(NewFusionBackend(pot, tb, F64), Options{Capacity: 64, Telemetry: set})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fe := Serve(srv, ln)
	defer func() { fe.Close(); srv.Close() }()
	addr := fe.Addr().String()
	_ = pot

	vets := sampleVETs(t, tb, 2, 61)

	// Default dial negotiates the newest protocol.
	v2, err := Dial(addr, units.LatticeConstantFe, units.CutoffShort)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.Protocol() != 2 {
		t.Fatalf("default dial negotiated v%d, want v2", v2.Protocol())
	}

	// Pinned to v1: the session works, just without trace carriage.
	v1, err := DialConfig{Protocol: 1}.Dial(addr, units.LatticeConstantFe, units.CutoffShort)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if v1.Protocol() != 1 {
		t.Fatalf("pinned dial negotiated v%d, want v1", v1.Protocol())
	}

	// Both sessions answer identically.
	for i, vet := range vets {
		a1, b1, c1 := v1.HopEnergies(vet)
		a2, b2, c2 := v2.HopEnergies(vet)
		if a1 != a2 || b1 != b2 || c1 != c2 {
			t.Fatalf("system %d: v1 (%v) != v2 (%v)", i, a1, a2)
		}
	}

	// A traced request on the v2 session lands a serve span whose parent
	// is the client's span; the same call on the v1 session must not (the
	// context cannot cross a v1 wire).
	countServeSpans := func() int {
		n := 0
		for _, e := range set.Events().Events() {
			if e.Type == trace.EventType && strings.HasPrefix(e.Msg, "serve") {
				n++
			}
		}
		return n
	}
	base := countServeSpans()
	ctx := trace.Context{Trace: 0xabc123, Span: 0xdef456}
	if _, err := v2.EvaluateTraced(vets[0], ctx); err != nil {
		t.Fatal(err)
	}
	if got := countServeSpans(); got != base+1 {
		t.Fatalf("v2 traced request produced %d serve spans, want %d", got, base+1)
	}
	var serveEv telemetry.Event
	for _, e := range set.Events().Events() {
		if e.Type == trace.EventType && strings.HasPrefix(e.Msg, "serve") {
			serveEv = e
		}
	}
	if serveEv.Trace != trace.ID(ctx.Trace) || serveEv.Parent != trace.ID(ctx.Span) {
		t.Fatalf("serve span lineage = trace %s parent %s, want trace %s parent %s",
			serveEv.Trace, serveEv.Parent, trace.ID(ctx.Trace), trace.ID(ctx.Span))
	}
	base = countServeSpans()
	if _, err := v1.EvaluateTraced(vets[0], ctx); err != nil {
		t.Fatal(err)
	}
	if got := countServeSpans(); got != base {
		t.Fatalf("v1 session leaked a trace context to the server (%d new serve spans)", got-base)
	}
}

// TestWireDialFallsBackToLegacyServer: against a server that predates
// negotiation — rejects the unknown hello2 opcode with an error frame —
// the client must transparently redial at v1.
func TestWireDialFallsBackToLegacyServer(t *testing.T) {
	_, tb := smallPotential(62)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				conn.SetDeadline(time.Now().Add(5 * time.Second))
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				p, err := readFrame(r, minFrame)
				if err != nil {
					return
				}
				// A legacy server knows only the 17-byte opHello.
				if len(p) != 17 || p[0] != opHello {
					writeFrame(w, errorFrame(errGeneric, "unknown frame"))
					w.Flush()
					return
				}
				ok := make([]byte, 5)
				ok[0] = opHelloOK
				ok[1] = byte(tb.NAll)
				ok[2] = byte(tb.NAll >> 8)
				writeFrame(w, ok)
				w.Flush()
			}(conn)
		}
	}()

	cl, err := Dial(ln.Addr().String(), units.LatticeConstantFe, units.CutoffShort)
	if err != nil {
		t.Fatalf("dial against a legacy server failed instead of falling back: %v", err)
	}
	defer cl.Close()
	if cl.Protocol() != 1 {
		t.Fatalf("fallback session negotiated v%d, want v1", cl.Protocol())
	}
}

// tracedFleet boots n nodes, each with its own telemetry set (its own
// process journal, as in production), plus a traced fleet client.
func tracedFleet(t *testing.T, n int, seed uint64) ([]*Frontend, []*telemetry.Set, []string, *telemetry.Set, *FleetClient, *nnp.Potential) {
	t.Helper()
	fes := make([]*Frontend, n)
	sets := make([]*telemetry.Set, n)
	addrs := make([]string, n)
	var pot *nnp.Potential
	for i := range fes {
		sets[i] = telemetry.NewSet()
		p, tb := smallPotential(seed)
		srv := New(NewFusionBackend(p, tb, F64), Options{Capacity: 256, Telemetry: sets[i]})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fes[i] = Serve(srv, ln)
		addrs[i] = ln.Addr().String()
		pot = p
		idx := i
		t.Cleanup(func() { fes[idx].Close(); srv.Close() })
	}
	clientSet := telemetry.NewSet()
	opts := quietFleet()
	opts.Retries = 1
	opts.Telemetry = clientSet
	fc, err := DialFleet(addrs, units.LatticeConstantFe, units.CutoffShort, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() })
	return fes, sets, addrs, clientSet, fc, pot
}

// TestFleetTraceFailoverAssembled is the acceptance chaos check: one
// traced request stream through a 3-node fleet, a node killed mid-
// stream, then `trace.Collect` + `Assemble` over every process's
// flushed journal must produce one tree holding the client's eval spans
// with an explicit failover leg AND the surviving nodes' serve spans
// nested under the eval spans that triggered them.
func TestFleetTraceFailoverAssembled(t *testing.T) {
	fes, sets, addrs, clientSet, fc, _ := tracedFleet(t, 3, 63)

	tb := fc.Tables()
	vets := sampleVETs(t, tb, 10, 64)
	// Make sure the victim owns at least one sampled key, or the kill
	// would never be observed (see TestFleetFailoverOnNodeKill).
	victim := 1
	ownsOne := func() bool {
		for _, vet := range vets {
			if fc.ring.Owner(tb.Fingerprint(vet)) == addrs[victim] {
				return true
			}
		}
		return false
	}
	for seed := uint64(200); !ownsOne(); seed++ {
		if seed == 250 {
			t.Fatal("no sampled key owned by the victim node after 50 batches")
		}
		vets = append(vets, sampleVETs(t, tb, 10, seed)...)
	}

	// The "segment": one root context, one segment span, per-request eval
	// spans underneath — exactly what core.runChunk sets up.
	root := trace.New()
	seg := trace.Start(clientSet.Events(), root, "segment")
	fc.SetTrace(seg.Context())

	for _, vet := range vets {
		fc.HopEnergies(vet)
	}
	fes[victim].Close() // node dies mid-traced-stream
	for _, vet := range vets {
		fc.HopEnergies(vet)
	}
	fc.SetTrace(trace.Context{})
	seg.End()

	if fc.Stats().Failovers == 0 {
		t.Fatal("kill produced no failovers — the chaos premise failed")
	}

	// Flush every process journal, exactly as the real deployment does on
	// exit, and assemble the trace from the files.
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "client.jsonl")}
	if err := clientSet.Events().FlushFile(paths[0]); err != nil {
		t.Fatal(err)
	}
	for i, set := range sets {
		p := filepath.Join(dir, "node"+string(rune('0'+i))+".jsonl")
		if err := set.Events().FlushFile(p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	recs, err := trace.Collect(root.Trace, paths)
	if err != nil {
		t.Fatal(err)
	}
	tree := trace.Assemble(root.Trace, recs)
	if tree.Spans() < 3 {
		t.Fatalf("assembled only %d spans", tree.Spans())
	}

	// Walk the tree: the failover leg and a cross-process serve span. A
	// failover event names the replica the request moved TO; the killed
	// node shows up as the pick that preceded it under the same eval
	// span, so assert an eval span carrying both.
	var sawFailoverLeg, sawServeUnderEval bool
	var walk func(n *trace.Node, underEval bool)
	walk = func(n *trace.Node, underEval bool) {
		if strings.HasPrefix(n.Name, "eval") {
			pickedVictim, failedOver := false, false
			for _, c := range n.Children {
				if strings.HasPrefix(c.Name, "pick node="+addrs[victim]) {
					pickedVictim = true
				}
				if strings.HasPrefix(c.Name, "failover node=") {
					failedOver = true
				}
			}
			if pickedVictim && failedOver {
				sawFailoverLeg = true
			}
		}
		if underEval && strings.HasPrefix(n.Name, "serve") {
			sawServeUnderEval = true
		}
		for _, c := range n.Children {
			walk(c, underEval || strings.HasPrefix(n.Name, "eval"))
		}
	}
	walk(tree, false)
	if !sawFailoverLeg {
		var sb strings.Builder
		tree.Write(&sb)
		t.Fatalf("assembled trace has no failover leg for the killed node:\n%s", sb.String())
	}
	if !sawServeUnderEval {
		var sb strings.Builder
		tree.Write(&sb)
		t.Fatalf("no serve span nested under an eval span — the context did not cross the wire:\n%s", sb.String())
	}

	// The segment span roots the tree (not an orphan).
	if len(tree.Children) == 0 || !strings.HasPrefix(tree.Children[0].Name, "segment") {
		var sb strings.Builder
		tree.Write(&sb)
		t.Fatalf("segment span is not the tree root:\n%s", sb.String())
	}
	for _, c := range tree.Children {
		if c.Orphan && !strings.HasPrefix(c.Name, "serve") {
			t.Errorf("unexpected orphan %q", c.Name)
		}
	}
}

// TestFleetUntracedPaysNothing: without SetTrace, no spans hit any
// journal — the zero-cost-when-off contract.
func TestFleetUntracedPaysNothing(t *testing.T) {
	_, sets, _, clientSet, fc, _ := tracedFleet(t, 2, 65)
	tb := fc.Tables()
	for _, vet := range sampleVETs(t, tb, 4, 66) {
		fc.HopEnergies(vet)
	}
	for _, set := range append(sets, clientSet) {
		for _, e := range set.Events().Events() {
			if e.Type == trace.EventType {
				t.Fatalf("untraced run recorded a span: %+v", e)
			}
		}
	}
}
