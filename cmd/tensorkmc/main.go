// Command tensorkmc runs an AKMC simulation from an input deck, mirroring
// the paper artifact's `tensorkmc -in input` invocation.
//
// Usage:
//
//	tensorkmc -in input [-quiet]
//
// The deck format is documented in internal/input. During the run the
// tool reports simulated time, executed hops, and the Cu precipitation
// observables (isolated Cu count, cluster count, largest cluster, number
// density) at the requested number of snapshots.
//
// The run is driven through the self-healing supervisor: failed
// segments (a stalled rank, a timed-out exchange, an audit violation)
// are restored from the last known-good state and replayed, up to the
// deck's max_retries. SIGINT/SIGTERM interrupt gracefully at the next
// snapshot boundary, writing a final checkpoint when one is configured.
//
// Exit codes:
//
//	0  clean run
//	1  runtime failure (unrecoverable corruption, retries exhausted, I/O)
//	2  usage or input-deck error
//	3  run completed, but only after recovering from failures
//	4  interrupted by signal; final checkpoint written if configured
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tensorkmc/internal/core"
	"tensorkmc/internal/input"
	"tensorkmc/internal/supervise"
	"tensorkmc/internal/telemetry"
	"tensorkmc/internal/telemetry/trace"
	"tensorkmc/internal/traj"
)

// Exit codes (see the package comment).
const (
	exitClean       = 0
	exitRuntime     = 1
	exitUsage       = 2
	exitRecovered   = 3
	exitInterrupted = 4
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// realMain is the testable entry point: parses flags, runs the deck and
// maps the outcome to an exit code. sig, if non-nil, delivers shutdown
// signals checked at snapshot boundaries.
func realMain(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("tensorkmc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	inPath := fs.String("in", "", "input deck path (required)")
	quiet := fs.Bool("quiet", false, "suppress snapshot lines; print only the final summary")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *inPath == "" {
		fmt.Fprintln(stderr, "usage: tensorkmc -in <deck>")
		return exitUsage
	}
	return run(*inPath, *quiet, stdout, stderr, sig)
}

func run(path string, quiet bool, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	deck, err := input.ParseFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "tensorkmc:", err)
		return exitUsage
	}
	cfg, err := deck.Finish()
	if err != nil {
		fmt.Fprintln(stderr, "tensorkmc:", err)
		return exitUsage
	}

	// Telemetry is always collected (it is cheap — atomic counters and
	// span accumulation) so the end-of-run breakdown table is available
	// on every run; the HTTP endpoint and the event-log file stay
	// opt-in via their deck keys.
	set := telemetry.NewSet()
	cfg.Telemetry = set
	if cfg.Trace && cfg.TraceParent == "" {
		// Mint the run's trace ID here, not in core.New: a supervisor
		// rebuild after a crash constructs a fresh Simulation from this
		// same Config, and pinning the parent keeps every rebuild's spans
		// in the one trace the banner printed.
		cfg.TraceParent = trace.New().TraceID()
	}
	if deck.EventLog != "" {
		// Deferred before anything can fail or panic: the flight
		// recorder must land on disk on every exit path, crashes
		// included (deferred functions run while panicking).
		defer func() {
			if err := set.Events().FlushFile(deck.EventLog); err != nil {
				fmt.Fprintln(stderr, "tensorkmc: writing event log:", err)
			}
		}()
	}
	if deck.TelemetryAddr != "" {
		srv, err := telemetry.Serve(deck.TelemetryAddr, set)
		if err != nil {
			fmt.Fprintln(stderr, "tensorkmc:", err)
			return exitUsage
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "tensorkmc: telemetry on http://%s/metrics\n", srv.Addr())
	}
	if deck.TrajLog != "" {
		mode := traj.ModeSerial
		if cfg.Ranks[0]*cfg.Ranks[1]*cfg.Ranks[2] > 1 {
			mode = traj.ModeParallel
		}
		rec, err := traj.Open(deck.TrajLog, mode, deck.TrajSnapshotEvery)
		if err != nil {
			fmt.Fprintln(stderr, "tensorkmc:", err)
			return exitUsage
		}
		defer rec.Close()
		rec.SetJournal(set.Events())
		cfg.Traj = rec
		fmt.Fprintf(stdout, "tensorkmc: recording %v trajectory to %s\n", mode, deck.TrajLog)
	}

	sup, err := supervise.New(cfg, supervise.Config{
		MaxRetries: deck.MaxRetries,
		AuditEvery: deck.AuditEvery,
		Seed:       cfg.Seed,
		OnFailure: func(f supervise.Failure) {
			if f.Backoff > 0 {
				fmt.Fprintf(stderr, "tensorkmc: segment %d attempt %d failed: %v (retrying in %v)\n",
					f.Segment, f.Attempt, f.Err, f.Backoff)
			} else {
				fmt.Fprintf(stderr, "tensorkmc: segment %d attempt %d failed: %v\n", f.Segment, f.Attempt, f.Err)
			}
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "tensorkmc:", err)
		return exitUsage
	}

	// Recovery may replace the simulation; close whichever is current on
	// exit so the evaluation service's workers drain.
	defer func() { sup.Simulation().Close() }()

	code := simulate(deck, cfg, sup, quiet, stdout, stderr, sig)
	summarize(set, sup, stdout)
	return code
}

// simulate drives the supervised run: the banner, the snapshot loop,
// dump files and the graceful signal path. It deliberately does not
// print the telemetry summary — run() emits that after simulate
// returns, so every exit code (clean, runtime failure, recovered,
// interrupted) carries the same end-of-run account.
func simulate(deck *input.Deck, cfg core.Config, sup *supervise.Supervisor, quiet bool, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	sim := sup.Simulation()
	fe, cu, vac := sim.Box().Count()
	fmt.Fprintf(stdout, "tensorkmc: %dx%dx%d cells (%d sites): %d Fe, %d Cu, %d vacancies\n",
		sim.Box().Nx, sim.Box().Ny, sim.Box().Nz, sim.Box().NumSites(), fe, cu, vac)
	fmt.Fprintf(stdout, "tensorkmc: T=%.0f K, r_cut=%.2f Å (N_local=%d, N_region=%d), duration %.3g s\n",
		sim.Cfg.Temperature, sim.Cfg.Cutoff, sim.Tables.NLocal, sim.Tables.NRegion, deck.Duration)
	if cfg.Ranks[0]*cfg.Ranks[1]*cfg.Ranks[2] > 1 {
		fmt.Fprintf(stdout, "tensorkmc: parallel %dx%dx%d ranks, t_stop=%.3g s\n",
			cfg.Ranks[0], cfg.Ranks[1], cfg.Ranks[2], sim.Cfg.TStop)
	}
	if deck.MaxRetries > 0 || deck.AuditEvery > 0 {
		fmt.Fprintf(stdout, "tensorkmc: supervised: max_retries=%d audit_every=%d\n", deck.MaxRetries, deck.AuditEvery)
	}
	if cfg.EvalCache > 0 {
		fmt.Fprintf(stdout, "tensorkmc: evaluation service: cache=%d entries\n", cfg.EvalCache)
	}
	if id := sim.TraceID(); id != "" {
		fmt.Fprintf(stdout, "tensorkmc: trace %s (assemble with: tkmc-analyze trace %s <journals>)\n", id, id)
	}

	snapshots := deck.Snapshots
	if snapshots < 1 {
		snapshots = 1
	}
	segment := deck.Duration / float64(snapshots)
	start := time.Now()
	for i := 1; i <= snapshots; i++ {
		if interrupted(sig) {
			return shutdown(sup, deck, stdout, stderr)
		}
		rep, err := sup.Run(segment)
		if err != nil {
			fmt.Fprintln(stderr, "tensorkmc:", err)
			return exitRuntime
		}
		sim = sup.Simulation() // recovery may have rebuilt it
		if !quiet || i == snapshots {
			a := rep.Analysis
			fmt.Fprintf(stdout, "t=%.4g s  hops=%d  isolatedCu=%d  clusters=%d  maxCluster=%d  density=%.3g /m^3\n",
				sim.Time(), rep.Hops, a.Isolated, a.Clusters, a.MaxSize, a.NumberDensity)
		}
		if deck.DumpFile != "" {
			if err := dumpXYZ(sim, deck.DumpFile, i); err != nil {
				fmt.Fprintln(stderr, "tensorkmc:", err)
				return exitRuntime
			}
		}
	}
	if deck.CheckpointFile != "" {
		// Run checkpoints crash-safely after every interval (the deck's
		// checkpoint_every, or each snapshot segment); the file on disk
		// is already the final state.
		fmt.Fprintf(stdout, "tensorkmc: checkpoint written to %s\n", deck.CheckpointFile)
	}
	fmt.Fprintf(stdout, "tensorkmc: done: %d hops in %.2f s wall (%.0f hops/s)\n",
		sim.Hops(), time.Since(start).Seconds(),
		float64(sim.Hops())/time.Since(start).Seconds())
	if sup.Recovery().Recovered() {
		return exitRecovered
	}
	return exitClean
}

// summarize prints the end-of-run account — the per-phase timing
// breakdown, the evaluation-service counters and the recovery summary.
// run() calls it on every exit path, so a failed or interrupted run
// reports where its time went just like a clean one.
func summarize(set *telemetry.Set, sup *supervise.Supervisor, stdout io.Writer) {
	fmt.Fprintln(stdout, "tensorkmc: per-phase timing:")
	_ = set.Trace().WriteTable(stdout)
	sim := sup.Simulation()
	if st, ok := sim.EvalStats(); ok {
		fmt.Fprintln(stdout, "tensorkmc:", st.String())
	}
	if s := sup.Recovery().Summary(); s != "" {
		fmt.Fprintln(stdout, "tensorkmc:", s)
	}
}

// interrupted polls the signal channel without blocking.
func interrupted(sig <-chan os.Signal) bool {
	select {
	case <-sig:
		return true
	default:
		return false
	}
}

// shutdown handles a graceful SIGINT/SIGTERM stop: persist the final
// state when a checkpoint is configured, report, and exit with the
// interrupted status.
func shutdown(sup *supervise.Supervisor, deck *input.Deck, stdout, stderr io.Writer) int {
	sim := sup.Simulation()
	if deck.CheckpointFile != "" {
		if err := sim.SaveCheckpoint(deck.CheckpointFile); err != nil {
			fmt.Fprintln(stderr, "tensorkmc: interrupted; final checkpoint failed:", err)
			return exitRuntime
		}
		fmt.Fprintf(stdout, "tensorkmc: interrupted at t=%.4g s; checkpoint written to %s\n",
			sim.Time(), deck.CheckpointFile)
	} else {
		fmt.Fprintf(stdout, "tensorkmc: interrupted at t=%.4g s (no checkpoint configured)\n", sim.Time())
	}
	return exitInterrupted
}

// dumpXYZ writes a solute snapshot "<base>.<n>.xyz" next to the
// configured dump path.
func dumpXYZ(sim *core.Simulation, base string, n int) error {
	path := fmt.Sprintf("%s.%04d.xyz", base, n)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	comment := fmt.Sprintf("Time=%g", sim.Time())
	if err := sim.Box().WriteXYZ(f, comment, true); err != nil {
		return err
	}
	return f.Close()
}
