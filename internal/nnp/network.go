package nnp

import (
	"fmt"
	"math"

	"tensorkmc/internal/rng"
)

// Layer is one fused (matmul, bias, activation) stage: y = act(x·W + b),
// with W of shape (in × out). The last layer of a network is linear.
type Layer struct {
	W    Matrix
	B    []float64
	Relu bool
}

// Network is the per-element energy head: a plain MLP mapping a feature
// vector to a scalar atomic energy. Sizes lists layer widths including
// input and output, e.g. the paper's (64, 128, 128, 128, 64, 1).
type Network struct {
	Sizes  []int
	Layers []Layer
}

// NewNetwork builds a He-initialised network with ReLU on all hidden
// layers and a linear output layer.
func NewNetwork(sizes []int, r *rng.Stream) *Network {
	if len(sizes) < 2 {
		panic("nnp: network needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nnp: invalid layer size %d", s))
		}
	}
	n := &Network{Sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		layer := Layer{
			W:    NewMatrix(in, out),
			B:    make([]float64, out),
			Relu: l+2 < len(sizes),
		}
		scale := math.Sqrt(2.0 / float64(in))
		for i := range layer.W.Data {
			layer.W.Data[i] = scale * r.NormFloat64()
		}
		n.Layers = append(n.Layers, layer)
	}
	return n
}

// StandardSizes is the paper's production architecture (Sec. 4.1.1).
var StandardSizes = []int{64, 128, 128, 128, 64, 1}

// InputDim returns the expected feature dimension.
func (n *Network) InputDim() int { return n.Sizes[0] }

// OutputDim returns the output width (1 for an energy head).
func (n *Network) OutputDim() int { return n.Sizes[len(n.Sizes)-1] }

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W.Data) + len(l.B)
	}
	return total
}

// FlopsPerSample returns the multiply-add count (×2) of one forward pass
// per input row, the quantity the roofline analysis of Fig. 9 counts.
func (n *Network) FlopsPerSample() int {
	f := 0
	for l := 0; l+1 < len(n.Sizes); l++ {
		f += 2 * n.Sizes[l] * n.Sizes[l+1]
	}
	return f
}

// Forward evaluates the network on a batch (rows = samples).
func (n *Network) Forward(x Matrix) Matrix {
	if x.Cols != n.InputDim() {
		panic(fmt.Sprintf("nnp: forward input width %d, want %d", x.Cols, n.InputDim()))
	}
	cur := x
	for _, l := range n.Layers {
		cur = MatMul(cur, l.W)
		if l.Relu {
			AddBiasRelu(cur, l.B)
		} else {
			AddBias(cur, l.B)
		}
	}
	return cur
}

// Tape stores the intermediate activations of a forward pass needed by
// Backward: acts[0] is the input, acts[l+1] the output of layer l.
type Tape struct {
	acts []Matrix
}

// ForwardTape evaluates the network, recording activations.
func (n *Network) ForwardTape(x Matrix) (Matrix, *Tape) {
	if x.Cols != n.InputDim() {
		panic("nnp: forward input width mismatch")
	}
	tape := &Tape{acts: make([]Matrix, 0, len(n.Layers)+1)}
	tape.acts = append(tape.acts, x)
	cur := x
	for _, l := range n.Layers {
		cur = MatMul(cur, l.W)
		if l.Relu {
			AddBiasRelu(cur, l.B)
		} else {
			AddBias(cur, l.B)
		}
		tape.acts = append(tape.acts, cur)
	}
	return cur, tape
}

// LayerGrad holds the parameter gradients of one layer.
type LayerGrad struct {
	W Matrix
	B []float64
}

// Backward propagates outGrad (∂L/∂output, same shape as the forward
// output) through the taped pass, returning ∂L/∂input and per-layer
// parameter gradients.
func (n *Network) Backward(tape *Tape, outGrad Matrix) (Matrix, []LayerGrad) {
	grads := make([]LayerGrad, len(n.Layers))
	delta := outGrad
	for l := len(n.Layers) - 1; l >= 0; l-- {
		layer := n.Layers[l]
		out := tape.acts[l+1]
		in := tape.acts[l]
		if layer.Relu {
			// ReLU gate: zero the gradient wherever the activation
			// clipped. Mutating a clone keeps the caller's outGrad
			// intact.
			gated := delta.Clone()
			for i := range gated.Data {
				if out.Data[i] <= 0 {
					gated.Data[i] = 0
				}
			}
			delta = gated
		}
		g := LayerGrad{W: MatMulATB(in, delta), B: make([]float64, len(layer.B))}
		for i := 0; i < delta.Rows; i++ {
			r := delta.Row(i)
			for j, v := range r {
				g.B[j] += v
			}
		}
		grads[l] = g
		if l > 0 {
			delta = MatMulABT(delta, layer.W)
		} else {
			delta = MatMulABT(delta, layer.W) // input gradient
		}
	}
	return delta, grads
}

// EnergyGradients backpropagates a unit output gradient (∂Σout/∂·) through
// a taped forward pass, returning the per-sample input gradient and the
// per-layer pre-activation gradients s⁽ˡ⁾ = ∂Σout/∂z_l. These are the
// ingredients of force evaluation and of force-loss double backprop.
func (n *Network) EnergyGradients(tape *Tape) (inGrad Matrix, preacts []Matrix) {
	if n.OutputDim() != 1 {
		panic("nnp: EnergyGradients requires a scalar output head")
	}
	preacts = make([]Matrix, len(n.Layers))
	rows := tape.acts[0].Rows
	delta := NewMatrix(rows, 1)
	for i := range delta.Data {
		delta.Data[i] = 1
	}
	for l := len(n.Layers) - 1; l >= 0; l-- {
		layer := n.Layers[l]
		if layer.Relu {
			out := tape.acts[l+1]
			gated := delta.Clone()
			for i := range gated.Data {
				if out.Data[i] <= 0 {
					gated.Data[i] = 0
				}
			}
			delta = gated
		}
		preacts[l] = delta
		delta = MatMulABT(delta, layer.W)
	}
	return delta, preacts
}

// DoubleBackward returns the parameter gradients of the scalar
// S = Σ_samples u·g, where g is the input gradient computed by
// EnergyGradients and u a per-sample co-gradient (∂Loss/∂g). This is the
// force-training step: the force loss depends on the weights only through
// g, and ∂S/∂W_l = v_{l−1}ᵀ·s⁽ˡ⁾ with v the forward propagation of u
// through the ReLU-linearised network. Biases do not influence g (ReLU
// masks are treated as constant almost everywhere), so their gradients
// are zero.
func (n *Network) DoubleBackward(tape *Tape, preacts []Matrix, u Matrix) []LayerGrad {
	if u.Rows != tape.acts[0].Rows || u.Cols != n.InputDim() {
		panic("nnp: DoubleBackward co-gradient shape mismatch")
	}
	grads := make([]LayerGrad, len(n.Layers))
	v := u
	for l, layer := range n.Layers {
		grads[l] = LayerGrad{W: MatMulATB(v, preacts[l]), B: make([]float64, len(layer.B))}
		if l == len(n.Layers)-1 {
			break
		}
		next := MatMul(v, layer.W)
		if layer.Relu {
			out := tape.acts[l+1]
			for i := range next.Data {
				if out.Data[i] <= 0 {
					next.Data[i] = 0
				}
			}
		}
		v = next
	}
	return grads
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{Sizes: append([]int(nil), n.Sizes...)}
	for _, l := range n.Layers {
		c.Layers = append(c.Layers, Layer{W: l.W.Clone(), B: append([]float64(nil), l.B...), Relu: l.Relu})
	}
	return c
}
