package core

import (
	"bytes"
	"math"
	"testing"

	"tensorkmc/internal/lattice"
	"tensorkmc/internal/rng"
)

// FuzzLoadCheckpoint feeds LoadCheckpoint corrupted TKMCBOX2 blobs (and
// legacy TKMCBOX1 snapshots): it must never panic or over-allocate, and
// anything it accepts must be internally consistent and survive a
// save/load round trip — a checkpoint that loads but cannot re-save
// identically would poison the crash-recovery chain.
func FuzzLoadCheckpoint(f *testing.F) {
	box := lattice.NewBox(3, 3, 2, 2.87)
	lattice.FillRandomAlloy(box, 0.1, 0.05, rng.New(7))
	full := &Checkpoint{
		Box:       box,
		Time:      1.5e-8,
		Hops:      321,
		Segment:   4,
		HasRNG:    true,
		RNG:       [4]uint64{11, 12, 13, 14},
		Vacancies: lattice.Vacancies(box),
	}
	var buf bytes.Buffer
	if err := full.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	parallel := &Checkpoint{Box: box, Time: 2e-8, Hops: 5, Segment: 9}
	var pbuf bytes.Buffer
	if err := parallel.Save(&pbuf); err != nil {
		f.Fatal(err)
	}

	var legacy bytes.Buffer // a bare TKMCBOX1 box snapshot
	if err := box.Save(&legacy); err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add(pbuf.Bytes())
	f.Add(legacy.Bytes())
	f.Add(valid[:8])                        // magic only
	f.Add(valid[:len(valid)/2])             // truncated body
	f.Add(valid[:len(valid)-2])             // truncated CRC trailer
	f.Add(append(bytes.Clone(valid), 0x00)) // trailing garbage
	f.Add(bytes.Clone(valid[:40]))          // header cut inside counters
	for _, i := range []int{0, 8, 24, 33, 41, len(valid) / 2, len(valid) - 3} {
		mut := bytes.Clone(valid) // bit-flipped mutants: magic, clock, flags, vacancy table, box, CRC
		mut[i] ^= 0x10
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := LoadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		if ck.Box == nil {
			t.Fatal("accepted checkpoint without a box")
		}
		if ck.Box.Nx <= 0 || ck.Box.Ny <= 0 || ck.Box.Nz <= 0 {
			t.Fatalf("accepted implausible box dims %dx%dx%d", ck.Box.Nx, ck.Box.Ny, ck.Box.Nz)
		}
		if math.IsNaN(ck.Time) || math.IsInf(ck.Time, 0) {
			t.Fatalf("accepted non-finite clock %v", ck.Time)
		}
		for i, v := range ck.Vacancies {
			if !v.IsSite() {
				t.Fatalf("accepted off-lattice vacancy slot %d: %v", i, v)
			}
		}
		// Round trip: what loads must re-save and re-load to the same state.
		var out bytes.Buffer
		if err := ck.Save(&out); err != nil {
			t.Fatalf("accepted checkpoint cannot re-save: %v", err)
		}
		ck2, err := LoadCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-saved checkpoint does not load: %v", err)
		}
		if !ck2.Box.Equal(ck.Box) || ck2.Time != ck.Time || ck2.Hops != ck.Hops ||
			ck2.Segment != ck.Segment || ck2.HasRNG != ck.HasRNG || ck2.RNG != ck.RNG ||
			len(ck2.Vacancies) != len(ck.Vacancies) {
			t.Fatal("checkpoint round trip not stable")
		}
	})
}
