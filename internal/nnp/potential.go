package nnp

import (
	"fmt"
	"math"

	"tensorkmc/internal/encoding"
	"tensorkmc/internal/fault"
	"tensorkmc/internal/feature"
	"tensorkmc/internal/lattice"
	"tensorkmc/internal/rng"
)

// Potential is the trained neural network potential: one energy head per
// chemical element (TensorAlloy-style), a shared feature descriptor, and
// the normalisation/reference constants fixed at training time.
//
// The per-atom energy of an atom of element e with raw feature vector x is
//
//	E_atom = Net_e((x − FeatMean)/FeatStd) + ERef_e
//
// and a configuration's energy is the sum over its atoms. Vacancies carry
// no energy.
type Potential struct {
	Desc *feature.Descriptor
	Nets [lattice.NumElements]*Network
	// ERef is the per-element reference (cohesive-scale) energy added
	// back to the network output; it centres the regression targets.
	ERef [lattice.NumElements]float64
	// FeatMean/FeatStd normalise raw features channel-wise. Nil means
	// identity (used by freshly initialised potentials and tests).
	FeatMean []float64
	FeatStd  []float64
}

// NewPotential builds an untrained potential with independently
// initialised per-element networks of the given layer sizes. sizes[0]
// must equal the descriptor dimension.
func NewPotential(desc *feature.Descriptor, sizes []int, r *rng.Stream) *Potential {
	if sizes[0] != desc.Dim() {
		panic(fmt.Sprintf("nnp: network input %d != descriptor dim %d", sizes[0], desc.Dim()))
	}
	if sizes[len(sizes)-1] != 1 {
		panic("nnp: energy head must have one output")
	}
	p := &Potential{Desc: desc}
	for e := range p.Nets {
		p.Nets[e] = NewNetwork(sizes, r.Split(uint64(e)))
	}
	return p
}

// NormalizeInto writes the normalised feature vector into dst — the
// exact channel-wise transform the evaluator applies before the network,
// exported so external batchers (internal/evalserve) reproduce it
// bit-identically.
func (p *Potential) NormalizeInto(dst, raw []float64) { p.normalizeInto(dst, raw) }

// NormalizeInPlace normalises a raw feature row in place: the same
// arithmetic as NormalizeInto with dst == raw, so batch assemblers can
// compute features directly into a fused matrix row and skip the copy.
// With no normalisation constants (FeatMean nil) it is a no-op, which is
// exactly what NormalizeInto's copy degenerates to.
func (p *Potential) NormalizeInPlace(row []float64) {
	if p.FeatMean == nil {
		return
	}
	for c, v := range row {
		row[c] = (v - p.FeatMean[c]) / p.FeatStd[c]
	}
}

// normalizeInto writes the normalised feature vector into dst.
func (p *Potential) normalizeInto(dst, raw []float64) {
	if p.FeatMean == nil {
		copy(dst, raw)
		return
	}
	for c, v := range raw {
		dst[c] = (v - p.FeatMean[c]) / p.FeatStd[c]
	}
}

// AtomEnergy evaluates one atom's energy from its raw feature vector.
func (p *Potential) AtomEnergy(s lattice.Species, raw []float64) float64 {
	if !s.IsAtom() {
		return 0
	}
	x := NewMatrix(1, p.Desc.Dim())
	p.normalizeInto(x.Data, raw)
	out := p.Nets[s].Forward(x)
	return out.Data[0] + p.ERef[s]
}

// Scratch holds reusable buffers for region-energy evaluation so the KMC
// hot loop does not allocate. One Scratch per goroutine.
type Scratch struct {
	feats []float64 // site feature vector (Dim)
	x     Matrix    // per-element batch input
}

// NewScratch sizes a scratch for the given tables/potential pair.
func (p *Potential) NewScratch(tb *encoding.Tables) *Scratch {
	return &Scratch{
		feats: make([]float64, p.Desc.Dim()),
		x:     NewMatrix(tb.NRegion, p.Desc.Dim()),
	}
}

// RegionEnergy returns the total energy of the jumping region of a
// vacancy system in state vet: the sum of per-atom energies over region
// sites. Outer (N_out) sites only shape the features of region sites;
// their own energies are invariant under any hop and therefore excluded
// (Sec. 3.1). The evaluation batches atoms per element so each element
// head runs one matmul — the structure the big-fusion operator executes
// on CPEs.
func (p *Potential) RegionEnergy(tb *encoding.Tables, tab *feature.Table, vet encoding.VET, s *Scratch) float64 {
	if s == nil {
		s = p.NewScratch(tb)
	}
	dim := p.Desc.Dim()
	total := 0.0
	for e := 0; e < lattice.NumElements; e++ {
		rows := 0
		for i := 0; i < tb.NRegion; i++ {
			if vet[i] != lattice.Species(e) {
				continue
			}
			feature.ComputeSite(tb, tab, vet, i, s.feats)
			p.normalizeInto(s.x.Data[rows*dim:(rows+1)*dim], s.feats)
			rows++
		}
		if rows == 0 {
			continue
		}
		batch := Matrix{Rows: rows, Cols: dim, Data: s.x.Data[:rows*dim]}
		out := p.Nets[e].Forward(batch)
		for i := 0; i < rows; i++ {
			total += out.Data[i]
		}
		total += float64(rows) * p.ERef[e]
	}
	return total
}

// HopEnergies computes the initial-state region energy and the energy of
// each of the 8 candidate final states, the 1+N_f evaluation of Sec. 3.4.
// Final states whose target site is not an atom (another vacancy) are
// reported as NaN-free: valid[k] is false and final[k] is 0.
//
// A non-finite region energy can only come from a corrupted network (a
// bit-flipped weight) or scrambled features; it is trapped here with a
// typed *fault.CorruptionError panic so the supervisor sees a
// non-retryable failure instead of a silently poisoned trajectory. The
// cost is one comparison per evaluated state, dwarfed by the MLP
// forward pass that produced the value.
func (p *Potential) HopEnergies(tb *encoding.Tables, tab *feature.Table, vet encoding.VET, s *Scratch) (initial float64, final [8]float64, valid [8]bool) {
	initial = p.RegionEnergy(tb, tab, vet, s)
	checkFiniteEnergy("initial", initial)
	for k := 0; k < 8; k++ {
		if !vet[tb.NN1Index[k]].IsAtom() {
			continue
		}
		tb.ApplyHop(vet, k)
		final[k] = p.RegionEnergy(tb, tab, vet, s)
		checkFiniteEnergy("final", final[k])
		valid[k] = true
		tb.ApplyHop(vet, k)
	}
	return initial, final, valid
}

// checkFiniteEnergy is the NNP hot-path tripwire.
func checkFiniteEnergy(state string, e float64) {
	if math.IsNaN(e) || math.IsInf(e, 0) {
		panic(&fault.CorruptionError{
			Subsystem: "nnp",
			Detail:    fmt.Sprintf("%s-state region energy is %v", state, e),
		})
	}
}

// StructureEnergy evaluates the total energy of a continuous periodic
// structure (the training-time path).
func (p *Potential) StructureEnergy(pos [][3]float64, spec []lattice.Species, cell [3]float64) float64 {
	feats := p.Desc.ComputeStructure(pos, spec, cell)
	total := 0.0
	for i, s := range spec {
		if s.IsAtom() {
			total += p.AtomEnergy(s, feats[i])
		}
	}
	return total
}

// StructureForces returns the analytic forces −∂E/∂x on every atom of a
// continuous structure, chaining the network input gradients through the
// descriptor derivative.
func (p *Potential) StructureForces(pos [][3]float64, spec []lattice.Species, cell [3]float64) [][3]float64 {
	feats := p.Desc.ComputeStructure(pos, spec, cell)
	dim := p.Desc.Dim()
	featGrad := make([][]float64, len(pos))
	for i := range featGrad {
		featGrad[i] = make([]float64, dim)
	}
	for e := 0; e < lattice.NumElements; e++ {
		var idx []int
		for i, s := range spec {
			if s == lattice.Species(e) {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		x := NewMatrix(len(idx), dim)
		for r, i := range idx {
			p.normalizeInto(x.Row(r), feats[i])
		}
		out, tape := p.Nets[e].ForwardTape(x)
		ones := NewMatrix(out.Rows, 1)
		for i := range ones.Data {
			ones.Data[i] = 1
		}
		inGrad, _ := p.Nets[e].Backward(tape, ones)
		for r, i := range idx {
			g := inGrad.Row(r)
			for c := 0; c < dim; c++ {
				// Chain through the normalisation: ∂x̂/∂x = 1/std.
				if p.FeatStd != nil {
					featGrad[i][c] = g[c] / p.FeatStd[c]
				} else {
					featGrad[i][c] = g[c]
				}
			}
		}
	}
	return p.Desc.ComputeForces(pos, spec, cell, featGrad)
}
