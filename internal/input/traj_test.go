package input

import (
	"path/filepath"
	"strings"
	"testing"

	"tensorkmc/internal/core"
)

func parseDeck(t *testing.T, text string) (*Deck, error) {
	t.Helper()
	return Parse(strings.NewReader(text))
}

const trajBase = "cells 4 4 4\nduration 1e-8\n"

func TestParseTrajKeys(t *testing.T) {
	d, err := parseDeck(t, trajBase+"traj_log run.tkmctrj\ntraj_snapshot_every 500\nensemble_replicas 8\n")
	if err != nil {
		t.Fatal(err)
	}
	if d.TrajLog != "run.tkmctrj" || d.TrajSnapshotEvery != 500 || d.EnsembleReplicas != 8 {
		t.Fatalf("parsed %+v", d)
	}
}

func TestTrajSnapshotEveryRequiresLog(t *testing.T) {
	if _, err := parseDeck(t, trajBase+"traj_snapshot_every 10\n"); err == nil {
		t.Fatal("orphan traj_snapshot_every accepted")
	}
	if _, err := parseDeck(t, trajBase+"traj_log x\ntraj_snapshot_every 0\n"); err == nil {
		t.Fatal("zero traj_snapshot_every accepted")
	}
}

func TestForkRequiresRestart(t *testing.T) {
	if _, err := parseDeck(t, trajBase+"fork on\n"); err == nil {
		t.Fatal("fork without restart accepted")
	}
	if _, err := parseDeck(t, trajBase+"fork maybe\nrestart ck\n"); err == nil {
		t.Fatal("invalid fork value accepted")
	}
}

func TestEnsembleReplicasCap(t *testing.T) {
	if _, err := parseDeck(t, trajBase+"ensemble_replicas 5000\n"); err == nil {
		t.Fatal("ensemble_replicas above cap accepted")
	}
}

// TestForkDropsRNG checks Finish strips the restored RNG stream so a
// forked replica draws from the deck's own seed while keeping the
// lattice, clock and hop count.
func TestForkDropsRNG(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "ck.tkmc")
	sim, err := core.New(core.Config{
		Cells: [3]int{6, 6, 6}, CuFraction: 0.01, VacancyFraction: 0.005, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if _, err := sim.Run(2e-8, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.SaveCheckpoint(ckPath); err != nil {
		t.Fatal(err)
	}

	deckText := trajBase + "restart " + ckPath + "\nfork on\nseed 99\n"
	d, err := parseDeck(t, deckText)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := d.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Restart == nil || cfg.Restart.HasRNG {
		t.Fatalf("fork kept the RNG stream: %+v", cfg.Restart)
	}
	if cfg.Restart.Hops != sim.Hops() || cfg.Restart.Time != sim.Time() {
		t.Fatal("fork perturbed the restored clock")
	}

	// Without fork the stream must survive untouched.
	d2, err := parseDeck(t, trajBase+"restart "+ckPath+"\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := d2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg2.Restart.HasRNG {
		t.Fatal("plain restart lost the RNG stream")
	}
}
