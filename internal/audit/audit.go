// Package audit is the physics invariant auditor: cheap, decisive
// checks that a simulation's state is still the one the physics allows.
// Vacancy-mediated KMC on a rigid lattice conserves matter exactly — no
// hop creates or destroys an atom — so per-species atom counts and the
// vacancy count are invariant over any trajectory; the simulated clock
// only moves forward; and every propensity the engine can ever select
// from is a finite, non-negative Arrhenius rate.
//
// A violated invariant means state corruption (a mis-applied ghost
// update, a bit flip, a logic bug), not statistics: the auditor turns
// it into a typed error a supervisor can act on — restore and replay
// for state drift, fail fast for numerical corruption — instead of
// letting a 50-trillion-atom run silently decay into garbage.
package audit

import (
	"fmt"
	"math"
	"strings"

	"tensorkmc/internal/fault"
	"tensorkmc/internal/kmc"
	"tensorkmc/internal/lattice"
)

// Baseline pins the conserved quantities at a known-good instant: the
// per-species atom counts and vacancy count (fixed for the whole run)
// and the simulated clock (a floor for every later audit). Supervisors
// capture it once at construction and advance only the Time field as
// segments commit.
type Baseline struct {
	Fe, Cu, Vacancies int
	Time              float64
}

// Capture records the box's conserved quantities and the current clock.
func Capture(box *lattice.Box, t float64) Baseline {
	fe, cu, vac := box.Count()
	return Baseline{Fe: fe, Cu: cu, Vacancies: vac, Time: t}
}

// Error reports violated physics invariants. It is retryable from a
// supervisor's perspective: the state drifted, so restoring a known-good
// checkpoint and replaying can heal it (unlike *fault.CorruptionError,
// which deterministic replay would only reproduce).
type Error struct {
	Violations []string
}

func (e *Error) Error() string {
	return fmt.Sprintf("audit: %d invariant(s) violated: %s", len(e.Violations), strings.Join(e.Violations, "; "))
}

// Check verifies the conservation and clock invariants of a state
// against its baseline. It costs one pass over the species array.
func Check(box *lattice.Box, t float64, base Baseline) error {
	var v []string
	fe, cu, vac := box.Count()
	if fe != base.Fe {
		v = append(v, fmt.Sprintf("Fe count drifted: %d -> %d", base.Fe, fe))
	}
	if cu != base.Cu {
		v = append(v, fmt.Sprintf("Cu count drifted: %d -> %d", base.Cu, cu))
	}
	if vac != base.Vacancies {
		v = append(v, fmt.Sprintf("vacancy count drifted: %d -> %d", base.Vacancies, vac))
	}
	if math.IsNaN(t) {
		v = append(v, "clock is NaN")
	} else if t < base.Time {
		v = append(v, fmt.Sprintf("clock ran backwards: %v -> %v", base.Time, t))
	}
	if v == nil {
		return nil
	}
	return &Error{Violations: v}
}

// Propensities rebuilds every vacancy system's hop rates from scratch —
// no caches, straight from the lattice through the model — and verifies
// each is finite and non-negative. A bad value is returned as the
// tripwires' *fault.CorruptionError so supervisors classify it as
// non-retryable; the hot-path tripwires that fire mid-run are recovered
// here too, for the same reason. Cost is one 1+8 energy evaluation per
// vacancy, so it belongs at audit cadence, not in the step loop.
func Propensities(box *lattice.Box, model kmc.Model, temperatureK float64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			ce, ok := p.(*fault.CorruptionError)
			if !ok {
				panic(p)
			}
			err = ce
		}
	}()
	tb := model.Tables()
	vet := tb.NewVET()
	for _, center := range lattice.Vacancies(box) {
		tb.FillVET(vet, center, box.Get)
		initial, final, valid := model.HopEnergies(vet)
		rates, total := kmc.Rates(vet, tb, initial, final, valid, temperatureK)
		for k, r := range rates {
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				return &fault.CorruptionError{
					Subsystem: "kmc",
					Detail:    fmt.Sprintf("vacancy %v direction %d has propensity %v", center, k, r),
				}
			}
		}
		if math.IsNaN(total) || math.IsInf(total, 0) || total < 0 {
			return &fault.CorruptionError{
				Subsystem: "kmc",
				Detail:    fmt.Sprintf("vacancy %v has total propensity %v", center, total),
			}
		}
	}
	return nil
}
