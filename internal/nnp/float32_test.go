package nnp

import (
	"math"
	"testing"

	"tensorkmc/internal/feature"
	"tensorkmc/internal/lattice"
	"tensorkmc/internal/rng"
)

func TestMatrix32Conversions(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.5
	}
	f := ToF32(m)
	back := f.ToF64()
	for i := range m.Data {
		if math.Abs(back.Data[i]-m.Data[i]) > 1e-6 {
			t.Fatal("conversion round trip lost precision")
		}
	}
}

// TestQuantizedForwardCloseToF64: single-precision inference must agree
// with the float64 reference to the relative level KMC rates tolerate
// (energy differences of ~1e-4 eV shift rates by exp(1e-4/2kT) ≈ 1.001).
func TestQuantizedForwardCloseToF64(t *testing.T) {
	n := NewNetwork([]int{64, 32, 16, 1}, rng.New(51))
	q := n.Quantize()
	r := rng.New(52)
	x := NewMatrix(100, 64)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	want := n.Forward(x)
	got := q.Forward(ToF32(x)).ToF64()
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-4*(1+math.Abs(want.Data[i])) {
			t.Fatalf("sample %d: f32 %v vs f64 %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestQuantizedReluGate(t *testing.T) {
	// A network driven to negative pre-activations must clamp in f32
	// exactly like f64 (no systematic sign bias).
	n := NewNetwork([]int{4, 8, 1}, rng.New(53))
	for l := range n.Layers {
		for i := range n.Layers[l].B {
			n.Layers[l].B[i] = -10 // force dead units
		}
	}
	q := n.Quantize()
	x := NewMatrix(5, 4)
	out := q.Forward(ToF32(x)).ToF64()
	want := n.Forward(x)
	for i := range out.Data {
		if math.Abs(out.Data[i]-want.Data[i]) > 1e-5 {
			t.Fatal("dead-unit network disagrees between precisions")
		}
	}
}

// TestPotential32Energies: the quantised potential's per-atom energies
// must track the float64 potential through normalisation and reference
// offsets.
func TestPotential32Energies(t *testing.T) {
	pot, tb, tab := stdPotential([]int{64, 16, 1}, 54)
	pot.ERef = [lattice.NumElements]float64{-4.0, -3.5}
	pot.FeatMean = make([]float64, pot.Desc.Dim())
	pot.FeatStd = make([]float64, pot.Desc.Dim())
	for i := range pot.FeatStd {
		pot.FeatMean[i] = 0.5
		pot.FeatStd[i] = 2.0
	}
	q := pot.Quantize()

	vet := tb.NewVET()
	for i := range vet {
		vet[i] = lattice.Fe
	}
	vet[0] = lattice.Vacancy
	// Collect raw features for a few Fe sites.
	var feats [][]float64
	for _, i := range []int{1, 5, 50} {
		f := make([]float64, pot.Desc.Dim())
		feature.ComputeSite(tb, tab, vet, i, f)
		feats = append(feats, f)
	}
	got := q.AtomEnergies(int(lattice.Fe), feats)
	for r, f := range feats {
		want := pot.AtomEnergy(lattice.Fe, f)
		if math.Abs(got[r]-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("site %d: f32 energy %v vs f64 %v", r, got[r], want)
		}
	}
}
