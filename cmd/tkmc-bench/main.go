// Command tkmc-bench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's per-experiment index):
//
//	fig7    NNP training parity (energy/force MAE and R²)
//	fig8    triple-encoding + vacancy-cache vs cache-all baseline
//	fig9    roofline of the energy kernels
//	fig10   operator optimisation ladder
//	fig11   serial x86 / SW / SW(opt) comparison
//	table1  memory: OpenKMC vs TensorKMC
//	fig12   strong scaling to 24,960,000 cores (model)
//	fig13   weak scaling to 54 trillion atoms (model)
//	fig14   Cu precipitation application
//
// The computations live in internal/experiments (whose tests assert the
// paper's shape claims); this command renders them as tables and text
// figures.
//
// Usage:
//
//	tkmc-bench -exp all [-quick] [-o report.txt]
//
// -quick shrinks the stochastic experiments (smaller boxes, shorter
// trainings) to finish in a couple of minutes; the full mode matches the
// configurations recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"tensorkmc/internal/eam"
	"tensorkmc/internal/experiments"
	"tensorkmc/internal/fusion"
	"tensorkmc/internal/lattice"
	"tensorkmc/internal/openkmc"
	"tensorkmc/internal/perfmodel"
	"tensorkmc/internal/plot"
	"tensorkmc/internal/rng"
	"tensorkmc/internal/units"
)

type runner struct {
	w     io.Writer
	quick bool
}

func (r *runner) printf(format string, args ...any) { fmt.Fprintf(r.w, format, args...) }

func (r *runner) section(title string) {
	r.printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

var order = []struct {
	name string
	fn   func(*runner)
}{
	{"fig7", (*runner).fig7},
	{"fig8", (*runner).fig8},
	{"fig9", (*runner).fig9},
	{"fig10", (*runner).fig10},
	{"fig11", (*runner).fig11},
	{"table1", (*runner).table1},
	{"fig12", (*runner).fig12},
	{"fig13", (*runner).fig13},
	{"fig14", (*runner).fig14},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (fig7..fig14, table1) or 'all'")
	quick := flag.Bool("quick", false, "scaled-down configurations")
	out := flag.String("o", "", "also write the report to this file")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tkmc-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	r := &runner{w: w, quick: *quick}
	r.printf("tkmc-bench report (quick=%v) — paper: TensorKMC, SC '21\n", *quick)

	ran := false
	for _, e := range order {
		if *exp == "all" || *exp == e.name {
			start := time.Now()
			e.fn(r)
			r.printf("[%s completed in %.1f s]\n", e.name, time.Since(start).Seconds())
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "tkmc-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func (r *runner) fig7() {
	r.section("Fig. 7 — NNP vs synthetic-DFT parity")
	cfg := experiments.Fig7Full()
	if r.quick {
		cfg = experiments.Fig7Quick()
	}
	r.printf("dataset: %d structures (%d train / %d test), 58-64 atoms each\n",
		cfg.NStructs, cfg.NTrain, cfg.NStructs-cfg.NTrain)
	res, err := experiments.Fig7(cfg)
	if err != nil {
		r.printf("training failed: %v\n", err)
		return
	}
	m := res.Metrics
	r.printf("%-22s %12s %12s\n", "metric", "measured", "paper")
	r.printf("%-22s %9.2f    %12s\n", "energy MAE (meV/atom)", m.EnergyMAE*1e3, "2.9")
	r.printf("%-22s %9.4f    %12s\n", "energy R2", m.EnergyR2, "0.998")
	r.printf("%-22s %9.3f    %12s\n", "force MAE (eV/A)", m.ForceMAE, "0.04")
	r.printf("%-22s %9.4f    %12s\n", "force R2", m.ForceR2, "0.880")
}

func (r *runner) fig8() {
	r.section("Fig. 8 — triple-encoding + vacancy cache vs cache-all baseline")
	cells, steps := 20, 1200
	if r.quick {
		cells, steps = 14, 400
	}
	res, err := experiments.Fig8(cells, steps, 10)
	if err != nil {
		r.printf("%v\n", err)
		return
	}
	r.printf("box %d^3 cells (%d sites): %d Cu / %d vacancies, T=573 K\n",
		cells, res.Sites, res.Cu, res.Vacancies)
	r.printf("%10s %14s %18s %18s %8s\n", "step", "time (s)", "isolatedCu(TKMC)", "isolatedCu(base)", "match")
	var xs, ysA, ysB []float64
	for _, p := range res.Points {
		r.printf("%10d %14.4g %18d %18d %8v\n",
			p.Step, p.Time, p.IsolatedTKMC, p.IsolatedBase, p.ConfigIdentical)
		xs = append(xs, float64(p.Step))
		ysA = append(ysA, float64(p.IsolatedTKMC))
		ysB = append(ysB, float64(p.IsolatedBase))
	}
	r.printf("\n%s", plot.LinePlot("isolated Cu vs steps (overlapping = identical)", []plot.SeriesData{
		{Name: "TensorKMC", Marker: 'o', X: xs, Y: ysA},
		{Name: "baseline", Marker: '+', X: xs, Y: ysB},
	}, 52, 8))
	r.printf("verdict: trajectories %s (paper: \"Both runs give identical results\")\n",
		map[bool]string{true: "IDENTICAL", false: "DIVERGED"}[res.Identical])
}

func (r *runner) fig9() {
	r.section("Fig. 9 — roofline of the energy kernels (N,H,W = 32,16,16)")
	res := experiments.Fig9()
	r.printf("machine balance: %.2f FLOP/B (paper: 43.63)\n\n", res.Balance)
	r.printf("%-18s %12s %12s %11s %14s %7s\n", "kernel", "MFLOP", "MB", "intensity", "attainable", "bound")
	bound := map[bool]string{true: "mem", false: "comp"}
	for _, p := range res.Layers {
		r.printf("%-18s %12.1f %12.2f %11.2f %11.1f GF %7s\n",
			p.Name, p.Flops/1e6, p.Bytes/1e6, p.Intensity, p.Attainable/1e9, bound[p.MemoryBound])
	}
	big := res.BigFusion
	r.printf("%-18s %12.1f %12.2f %11.1f %11.1f GF %7s\n",
		big.Name, big.Flops/1e6, big.Bytes/1e6, big.Intensity, big.Attainable/1e9, bound[big.MemoryBound])
	r.printf("\ntotal traffic: per-layer %.1f MB -> big-fusion %.2f MB (paper: 56 MB -> 2 MB)\n",
		res.TotalLayerBytes/1e6, big.Bytes/1e6)
	r.printf("intensity: per-layer %.2f..%.2f (paper 0.48..21.3); big-fusion %.1f (paper 509.1, ours counts parameters)\n",
		res.Layers[4].Intensity, res.Layers[1].Intensity, big.Intensity)
}

func (r *runner) fig10() {
	r.section("Fig. 10 — operator optimisation ladder (simulated SW26010-pro CG)")
	ms := []int{8192, 4096, 2048}
	if r.quick {
		ms = []int{2048}
	}
	paper := map[fusion.Variant]string{
		fusion.Base: "1.00", fusion.Matmul: "1.23", fusion.SIMD: "16-22",
		fusion.Fused: "33-41", fusion.BigFusion: "131-161",
	}
	for _, m := range ms {
		r.printf("\nbatch m=%d samples:\n", m)
		r.printf("%-24s %12s %10s %12s\n", "variant", "model time", "speedup", "paper")
		var bars []plot.Bar
		for _, rung := range experiments.Fig10(m) {
			r.printf("%-24s %9.3f ms %9.1fx %12s\n",
				rung.Variant, rung.Seconds*1e3, rung.Speedup, paper[rung.Variant])
			bars = append(bars, plot.Bar{Label: rung.Variant.String(), Value: rung.Speedup, Note: "paper " + paper[rung.Variant]})
		}
		r.printf("\n%s", plot.BarChart("speedup over base (log scale)", bars, 48, true))
	}
}

func (r *runner) fig11() {
	r.section("Fig. 11 — serial comparison (1e-7 s, 128M atoms; model)")
	for _, res := range experiments.Fig11() {
		r.printf("\nr_cut = %.1f A (%.0f KMC steps):\n", res.Rcut, res.Steps)
		r.printf("%-9s %12s %12s %12s %12s\n", "platform", "feature/step", "energy/step", "other/step", "total")
		for p, b := range res.Breakdown {
			r.printf("%-9s %9.3f ms %9.3f ms %9.3f ms %9.1f s\n",
				perfmodel.Platform(p), b.Feature*1e3, b.Energy*1e3, b.Other*1e3, res.Totals[p])
		}
		r.printf("speedups: SW(opt) vs x86 = %.1fx (paper ~11x), vs SW = %.1fx (paper ~17x)\n",
			res.Totals[perfmodel.X86]/res.Totals[perfmodel.SWOpt],
			res.Totals[perfmodel.SW]/res.Totals[perfmodel.SWOpt])
	}
}

func (r *runner) table1() {
	r.section("Table 1 — memory: OpenKMC (cache-all) vs TensorKMC (vacancy cache)")
	res := experiments.Table1()
	mb := func(b float64) float64 { return b / (1 << 20) }
	r.printf("%-10s | %9s %9s %9s %9s %9s %10s | %10s %10s | %6s\n",
		"Matoms", "T", "POS_ID", "E_V", "E_R", "Neigh", "runtime", "VAC cache", "runtime", "ratio")
	for _, row := range res.Rows {
		openRuntime := fmt.Sprintf("%9.0f", mb(row.Open.Runtime))
		if row.Open.OOM {
			openRuntime = "OOM(>16G)"
		}
		r.printf("%-10.0f | %9.0f %9.0f %9.0f %9.0f %9.0f %10s | %10.2f %10.0f | %5.1fx\n",
			row.AtomsMillions,
			mb(row.Open.T), mb(row.Open.PosID), mb(row.Open.EV), mb(row.Open.ER), mb(row.Open.Neigh),
			openRuntime, mb(row.Tensor.VacCache), mb(row.Tensor.Runtime), row.Ratio)
	}
	r.printf("per-atom: %.0f B (baseline) vs %.2f B (TensorKMC) — paper: 0.70 kB -> 0.10 kB\n",
		res.PerAtomOpen, res.PerAtomTKMC)

	// Measured validation at small scale.
	cells := 50
	if r.quick {
		cells = 25
	}
	box := lattice.NewBox(cells, cells, cells, units.LatticeConstantFe)
	lattice.FillRandomAlloy(box, 0.0134, 8e-6, rng.New(9))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	e := openkmc.NewEngine(box, eam.New(eam.Default()), units.CutoffStandard, units.ReactorTemperature, rng.New(10))
	runtime.ReadMemStats(&after)
	r.printf("\nmeasured baseline at %.2g M sites: arrays %.1f MB (formula), heap delta %.1f MB\n",
		float64(box.NumSites())/1e6, mb(float64(e.Memory().Total())),
		float64(after.HeapAlloc-before.HeapAlloc)/(1<<20))
}

func (r *runner) scalingSection(title string, pts []perfmodel.Point, weak bool) {
	r.section(title)
	if weak {
		r.printf("%10s %12s %16s %12s %12s\n", "CGs", "cores", "total atoms", "time (s)", "efficiency")
	} else {
		r.printf("%10s %12s %14s %12s %12s\n", "CGs", "cores", "atoms/CG", "time (s)", "efficiency")
	}
	var xs, ys []float64
	for _, p := range pts {
		if weak {
			r.printf("%10d %12d %16.4g %12.3f %11.1f%%\n", p.CGs, p.Cores, p.TotalAtoms, p.WallTime, p.Efficiency*100)
		} else {
			r.printf("%10d %12d %14.3g %12.3f %11.1f%%\n", p.CGs, p.Cores, p.AtomsPerCG, p.WallTime, p.Efficiency*100)
		}
		xs = append(xs, math.Log2(float64(p.CGs)/float64(pts[0].CGs)))
		ys = append(ys, p.Efficiency*100)
	}
	name := "strong"
	if weak {
		name = "weak"
	}
	r.printf("\n%s", plot.LinePlot("parallel efficiency (%) vs log2(CGs/12000)",
		[]plot.SeriesData{{Name: name, Marker: 'o', X: xs, Y: ys}}, 52, 8))
}

func (r *runner) fig12() {
	r.scalingSection("Fig. 12 — strong scaling, 1.92 trillion atoms (model)", experiments.Fig12(), false)
	r.printf("paper: 85%% parallel efficiency at 24,960,000 cores\n")
}

func (r *runner) fig13() {
	r.scalingSection("Fig. 13 — weak scaling, 128M atoms/CG up to 54.067 trillion atoms (model)", experiments.Fig13(), true)
	r.printf("paper: excellent weak scaling to 422,400 CGs / 27,456,000 cores\n")
}

func (r *runner) fig14() {
	r.section("Fig. 14 — Cu precipitation under thermal aging (573 K, supersaturated Fe-Cu)")
	cells, steps := 16, 60000
	if r.quick {
		cells, steps = 12, 16000
	}
	res := experiments.Fig14(cells, steps, 12)
	r.printf("box %d^3 cells (%d sites), %d Cu, %d vacancies, r_cut=5.8 A\n",
		cells, res.Sites, res.Cu, res.Vacancies)
	r.printf("(Cu and vacancy concentrations raised above the paper's 1.34%%/8e-6 to reach nucleation at bench scale)\n")
	r.printf("%10s %12s %12s %10s %10s %14s\n", "hops", "time (s)", "isolatedCu", "clusters", "maxSize", "density (/m^3)")
	var hopsS, isoS, maxS []float64
	for _, p := range res.Points {
		a := p.Analysis
		r.printf("%10d %12.3g %12d %10d %10d %14.3g\n",
			p.Hops, p.Time, a.Isolated, a.Clusters, a.MaxSize, a.NumberDensity)
		hopsS = append(hopsS, float64(p.Hops))
		isoS = append(isoS, float64(a.Isolated))
		maxS = append(maxS, float64(a.MaxSize))
	}
	r.printf("\n%s", plot.LinePlot("isolated Cu (o) and max cluster (x) vs hops", []plot.SeriesData{
		{Name: "isolatedCu", Marker: 'o', X: hopsS, Y: isoS},
		{Name: "maxCluster", Marker: 'x', X: hopsS, Y: maxS},
	}, 52, 8))

	first := res.Points[0].Analysis
	last := res.Points[len(res.Points)-1].Analysis
	drop := 100 * float64(first.Isolated-last.Isolated) / math.Max(float64(first.Isolated), 1)
	r.printf("isolated Cu dropped %.0f%%; largest cluster %d (paper: isolated Cu greatly reduced, max cluster ~40 at 250M-atom scale)\n",
		drop, last.MaxSize)
	var sizes []int
	for s := range last.Histogram {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	r.printf("final cluster-size histogram:")
	for _, s := range sizes {
		r.printf(" %dx%d", last.Histogram[s], s)
	}
	r.printf("  (count x size)\n")
}
