package nnp

// Single-precision inference. The Sunway big-fusion operator runs in
// float32 (the paper quotes 76.64% of *single-precision* peak, and the
// roofline counts 4-byte elements); training here stays in float64, and
// this file provides the quantised inference path plus the error bound
// the KMC rates can tolerate.

// Matrix32 is a dense row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zeroed matrix.
func NewMatrix32(rows, cols int) Matrix32 {
	return Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns a view of row i.
func (m Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// ToF32 converts a float64 matrix.
func ToF32(m Matrix) Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// ToF64 converts back to float64.
func (m Matrix32) ToF64() Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// Network32 is a float32 snapshot of a trained network, used for
// inference only.
type Network32 struct {
	Sizes  []int
	layers []layer32
}

type layer32 struct {
	w    Matrix32
	b    []float32
	relu bool
}

// Quantize converts a trained float64 network to float32 inference form.
func (n *Network) Quantize() *Network32 {
	q := &Network32{Sizes: append([]int(nil), n.Sizes...)}
	for _, l := range n.Layers {
		ql := layer32{w: ToF32(l.W), b: make([]float32, len(l.B)), relu: l.Relu}
		for i, v := range l.B {
			ql.b[i] = float32(v)
		}
		q.layers = append(q.layers, ql)
	}
	return q
}

// Forward evaluates the quantised network on a float32 batch.
// Accumulation is float32 throughout, matching SIMD hardware behaviour.
func (q *Network32) Forward(x Matrix32) Matrix32 {
	if x.Cols != q.Sizes[0] {
		panic("nnp: f32 forward input width mismatch")
	}
	cur := x
	for _, l := range q.layers {
		next := NewMatrix32(cur.Rows, l.w.Cols)
		for i := 0; i < cur.Rows; i++ {
			ar := cur.Row(i)
			cr := next.Row(i)
			for k := 0; k < cur.Cols; k++ {
				av := ar[k]
				if av == 0 {
					continue
				}
				br := l.w.Row(k)
				for j := range br {
					cr[j] += av * br[j]
				}
			}
			for j := range cr {
				v := cr[j] + l.b[j]
				if l.relu && v < 0 {
					v = 0
				}
				cr[j] = v
			}
		}
		cur = next
	}
	return cur
}

// Potential32 is the single-precision inference form of a trained
// potential: quantised per-element heads plus float32 normalisation.
type Potential32 struct {
	Nets [2]*Network32
	mean []float32
	std  []float32
	eref [2]float32
	dim  int
}

// Quantize converts a trained potential for float32 inference.
func (p *Potential) Quantize() *Potential32 {
	q := &Potential32{dim: p.Desc.Dim()}
	for e := range p.Nets {
		q.Nets[e] = p.Nets[e].Quantize()
		q.eref[e] = float32(p.ERef[e])
	}
	if p.FeatMean != nil {
		q.mean = make([]float32, q.dim)
		q.std = make([]float32, q.dim)
		for i := range p.FeatMean {
			q.mean[i] = float32(p.FeatMean[i])
			q.std[i] = float32(p.FeatStd[i])
		}
	}
	return q
}

// AtomEnergies evaluates per-atom energies for a batch of raw float64
// feature rows of one element, in single precision, returning float64
// results for the rate code.
func (q *Potential32) AtomEnergies(element int, feats [][]float64) []float64 {
	x := NewMatrix32(len(feats), q.dim)
	for r, f := range feats {
		dst := x.Row(r)
		for c, v := range f {
			fv := float32(v)
			if q.mean != nil {
				fv = (fv - q.mean[c]) / q.std[c]
			}
			dst[c] = fv
		}
	}
	out := q.Nets[element].Forward(x)
	res := make([]float64, len(feats))
	for i := range res {
		res[i] = float64(out.Data[i] + q.eref[element])
	}
	return res
}
