package lattice

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"tensorkmc/internal/rng"
)

func TestBoxSaveLoadRoundTrip(t *testing.T) {
	b := NewBox(6, 5, 4, 2.87)
	FillRandomAlloy(b, 0.1, 0.01, rng.New(1))
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBox(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(loaded) {
		t.Fatal("round trip lost state")
	}
	if loaded.A != b.A {
		t.Fatal("lattice constant lost")
	}
}

func TestBoxSaveLoadFile(t *testing.T) {
	b := NewBox(4, 4, 4, 2.87)
	FillRandomAlloy(b, 0.2, 0.0, rng.New(2))
	path := filepath.Join(t.TempDir(), "snap.box")
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBoxFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(loaded) {
		t.Fatal("file round trip lost state")
	}
	if _, err := LoadBoxFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadBoxRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("TKMCBOX1 truncated"),
	}
	for _, c := range cases {
		if _, err := LoadBox(bytes.NewReader(c)); err == nil {
			t.Fatalf("LoadBox accepted %q", c)
		}
	}
}

func TestLoadBoxRejectsInvalidSpecies(t *testing.T) {
	b := NewBox(2, 2, 2, 2.87)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] = 99 // corrupt a species byte
	if _, err := LoadBox(bytes.NewReader(data)); err == nil {
		t.Fatal("LoadBox accepted invalid species")
	}
}

func TestWriteXYZ(t *testing.T) {
	b := NewBox(3, 3, 3, 2.87)
	b.Set(Vec{X: 1, Y: 1, Z: 1}, Cu)
	b.Set(Vec{X: 2, Y: 2, Z: 2}, Vacancy)

	var full bytes.Buffer
	if err := b.WriteXYZ(&full, "t=0", false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(full.String()), "\n")
	if lines[0] != "54" {
		t.Fatalf("full export count line = %q, want 54", lines[0])
	}
	if !strings.Contains(lines[1], "Lattice=") || !strings.Contains(lines[1], "t=0") {
		t.Fatalf("header missing metadata: %q", lines[1])
	}
	if len(lines) != 2+54 {
		t.Fatalf("expected 56 lines, got %d", len(lines))
	}

	var solute bytes.Buffer
	if err := b.WriteXYZ(&solute, "", true); err != nil {
		t.Fatal(err)
	}
	sl := strings.Split(strings.TrimSpace(solute.String()), "\n")
	if sl[0] != "2" {
		t.Fatalf("solute export count = %q, want 2", sl[0])
	}
	body := strings.Join(sl[2:], "\n")
	if !strings.Contains(body, "Cu ") || !strings.Contains(body, "X ") {
		t.Fatalf("solute export missing species: %q", body)
	}
	if strings.Contains(body, "Fe ") {
		t.Fatal("solute export contains Fe")
	}
}
