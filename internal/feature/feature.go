// Package feature implements the atomic feature descriptor of Sec. 3.4:
// the exponential-style descriptor of Oganov et al.,
//
//	f(r | p, q) = Σ_j exp(−(r_j/p)^q),
//
// summed over neighbours j within the cutoff. Each atom is described by an
// N_dim × N_el vector: one channel per (p, q) hyper-parameter pair per
// neighbour element. With the paper's 32 (p, q) sets and two elements
// (Fe, Cu) this yields the 64 input channels of the NNP.
//
// Two evaluation paths exist:
//
//   - The tabulated lattice path (Table, ComputeRegion): in AKMC all atoms
//     sit on lattice sites, so interatomic distances take only a handful
//     of discrete values and exp(−(r/p)^q) can be precomputed into TABLE
//     (Eq. 6). This is the fast path used by the KMC engines.
//   - The continuous path (Descriptor.Pairwise): used when generating and
//     fitting training structures, whose atoms carry small displacements;
//     it also supplies the analytic radial derivative needed for forces.
package feature

import (
	"fmt"
	"math"

	"tensorkmc/internal/encoding"
	"tensorkmc/internal/lattice"
)

// PQ is one (p, q) hyper-parameter pair of the Oganov descriptor.
type PQ struct{ P, Q float64 }

// StandardPQ returns the paper's 32 hyper-parameter sets (Sec. 4.1.1):
// p descends from 4.2 in steps of −0.1 and q ascends from 1.85 in steps
// of 0.05.
func StandardPQ() []PQ {
	out := make([]PQ, 32)
	for i := range out {
		out[i] = PQ{P: 4.2 - 0.1*float64(i), Q: 1.85 + 0.05*float64(i)}
	}
	return out
}

// Descriptor evaluates the Oganov feature set for a fixed element count.
type Descriptor struct {
	PQ   []PQ
	NEl  int
	Rcut float64
}

// NewDescriptor constructs a descriptor. It panics on empty hyper-
// parameters or non-positive cutoff.
func NewDescriptor(pq []PQ, nEl int, rcut float64) *Descriptor {
	if len(pq) == 0 || nEl <= 0 || rcut <= 0 {
		panic("feature: invalid descriptor parameters")
	}
	for _, s := range pq {
		if s.P <= 0 || s.Q <= 0 {
			panic(fmt.Sprintf("feature: invalid (p,q) = %+v", s))
		}
	}
	return &Descriptor{PQ: pq, NEl: nEl, Rcut: rcut}
}

// Standard returns the paper's production descriptor: 32 (p, q) sets,
// two elements, the given cutoff.
func Standard(rcut float64) *Descriptor {
	return NewDescriptor(StandardPQ(), lattice.NumElements, rcut)
}

// NDim returns the number of (p, q) channels per element.
func (d *Descriptor) NDim() int { return len(d.PQ) }

// Dim returns the full per-atom feature dimension N_dim × N_el.
func (d *Descriptor) Dim() int { return len(d.PQ) * d.NEl }

// Channel returns the feature index of (neighbour element, pq index).
func (d *Descriptor) Channel(el, pq int) int { return el*len(d.PQ) + pq }

// Eval writes exp(−(r/p)^q) for every (p, q) into out (length NDim).
func (d *Descriptor) Eval(r float64, out []float64) {
	for i, s := range d.PQ {
		out[i] = math.Exp(-math.Pow(r/s.P, s.Q))
	}
}

// EvalDeriv writes the value and radial derivative d/dr of each channel.
// d/dr exp(−(r/p)^q) = −(q/p)·(r/p)^(q−1)·exp(−(r/p)^q).
func (d *Descriptor) EvalDeriv(r float64, val, deriv []float64) {
	for i, s := range d.PQ {
		x := r / s.P
		e := math.Exp(-math.Pow(x, s.Q))
		val[i] = e
		deriv[i] = -(s.Q / s.P) * math.Pow(x, s.Q-1) * e
	}
}

// Table is the precomputed TABLE of Eq. (6): one row per quantised
// lattice distance, one column per (p, q) channel.
type Table struct {
	desc  *Descriptor
	nDist int
	vals  []float64 // nDist × NDim, row-major
}

// NewTable tabulates the descriptor over the given discrete distances
// (Å), typically encoding.Tables.Distances.
func NewTable(d *Descriptor, distances []float64) *Table {
	t := &Table{desc: d, nDist: len(distances), vals: make([]float64, len(distances)*d.NDim())}
	row := make([]float64, d.NDim())
	for i, r := range distances {
		d.Eval(r, row)
		copy(t.vals[i*d.NDim():], row)
	}
	return t
}

// Row returns the tabulated channel values for distance index i.
func (t *Table) Row(i int) []float64 {
	nd := t.desc.NDim()
	return t.vals[i*nd : (i+1)*nd]
}

// Desc returns the descriptor the table was built from.
func (t *Table) Desc() *Descriptor { return t.desc }

// MemoryBytes returns the table footprint.
func (t *Table) MemoryBytes() int { return 8 * len(t.vals) }

// ComputeSite computes the feature vector of region site i of a vacancy
// system into out (length Dim), given the shared tables and the system's
// VET. Vacancy neighbours contribute nothing; out is fully overwritten.
//
// Evaluation order (part of the determinism contract): neighbours are
// first tallied into per-(element, distance-shell) occupancy counts, then
// each occupied shell contributes count·TABLE[shell] to its element's
// channel block, shells ascending — the weighted-TABLE form of Eq. (6).
// The order is fixed, so every caller (serial evaluator, fused batcher,
// CPE feature operator) produces bit-identical rows for the same VET.
// Grouping by shell costs O(occupied shells) table passes per site
// instead of O(neighbours) — on the bcc lattice roughly a 5× reduction.
func ComputeSite(tb *encoding.Tables, tab *Table, vet encoding.VET, i int, out []float64) {
	d := tab.desc
	nd := d.NDim()
	if d.NEl <= maxSiteElems && tab.nDist <= maxSiteShells && len(out) <= len(computeSiteBuf{}) {
		var cnt [maxSiteElems * maxSiteShells]uint16
		nDist := tab.nDist
		for _, nb := range tb.Neighbors(i) {
			s := vet[nb.ID]
			if !s.IsAtom() {
				continue
			}
			cnt[int(s)*nDist+int(nb.DistIndex)]++
		}
		var buf computeSiteBuf
		b := buf[:len(out)]
		for s := 0; s < d.NEl; s++ {
			dst := b[s*nd : s*nd+nd]
			for dist := 0; dist < nDist; dist++ {
				c := cnt[s*nDist+dist]
				if c == 0 {
					continue
				}
				f := float64(c)
				row := tab.vals[dist*nd : (dist+1)*nd]
				x := dst[:len(row)]
				j := 0
				for ; j+4 <= len(row); j += 4 {
					x[j] += f * row[j]
					x[j+1] += f * row[j+1]
					x[j+2] += f * row[j+2]
					x[j+3] += f * row[j+3]
				}
				for ; j < len(row); j++ {
					x[j] += f * row[j]
				}
			}
		}
		copy(out, b)
		return
	}
	// General fallback (oversize descriptors): same shell-grouped order,
	// heap-allocated tallies.
	cnt := make([]uint16, d.NEl*tab.nDist)
	for _, nb := range tb.Neighbors(i) {
		s := vet[nb.ID]
		if !s.IsAtom() {
			continue
		}
		cnt[int(s)*tab.nDist+int(nb.DistIndex)]++
	}
	for k := range out {
		out[k] = 0
	}
	for s := 0; s < d.NEl; s++ {
		dst := out[s*nd : s*nd+nd]
		for dist := 0; dist < tab.nDist; dist++ {
			c := cnt[s*tab.nDist+dist]
			if c == 0 {
				continue
			}
			f := float64(c)
			row := tab.Row(dist)
			for j, v := range row {
				dst[j] += f * v
			}
		}
	}
}

// computeSiteBuf is the on-stack accumulator of ComputeSite's fast path;
// it covers the production descriptor (64 channels) with headroom.
type computeSiteBuf [128]float64

// Fast-path tally bounds: the production encoding has 2 elements and a
// few tens of distance shells.
const (
	maxSiteElems  = 4
	maxSiteShells = 64
)

// ComputeRegion evaluates features for every region site of a vacancy
// system. out must have length NRegion × Dim; it is fully overwritten.
// This is the workload the paper's fast feature operator distributes
// over CPEs (Sec. 3.4).
func ComputeRegion(tb *encoding.Tables, tab *Table, vet encoding.VET, out []float64) {
	dim := tab.desc.Dim()
	if len(out) != tb.NRegion*dim {
		panic(fmt.Sprintf("feature: region buffer length %d, want %d", len(out), tb.NRegion*dim))
	}
	for i := 0; i < tb.NRegion; i++ {
		ComputeSite(tb, tab, vet, i, out[i*dim:(i+1)*dim])
	}
}

// ComputeSiteDirect is the untabulated reference path: it recomputes
// exp(−(r/p)^q) for every neighbour instead of reading TABLE. It exists
// as the baseline of the feature-table ablation and as a test oracle.
func ComputeSiteDirect(tb *encoding.Tables, desc *Descriptor, vet encoding.VET, i int, out []float64) {
	nd := desc.NDim()
	for k := range out {
		out[k] = 0
	}
	row := make([]float64, nd)
	for _, nb := range tb.Neighbors(i) {
		s := vet[nb.ID]
		if !s.IsAtom() {
			continue
		}
		desc.Eval(tb.Distances[nb.DistIndex], row)
		base := int(s) * nd
		for c, v := range row {
			out[base+c] += v
		}
	}
}
