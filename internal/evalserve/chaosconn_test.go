package evalserve

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a chaos-wrapped writer end and the peer's reader end.
func pipePair(chaos *ConnChaos) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return chaos.Wrap(a), b
}

// readAll drains the reader until EOF/close with a deadline guard.
func readAll(t *testing.T, c net.Conn) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf bytes.Buffer
	_, err := io.Copy(&buf, c)
	if err != nil && err != io.EOF && err != io.ErrClosedPipe {
		// A killed peer surfaces as a closed pipe; anything else is real.
		if _, ok := err.(net.Error); !ok {
			t.Fatalf("read: %v", err)
		}
	}
	return buf.Bytes()
}

// TestConnChaosDrop: a dropped write must report success to the writer
// while the peer sees nothing.
func TestConnChaosDrop(t *testing.T) {
	chaos := NewConnChaos(7).WithDrop(1).WithBudget(1)
	w, r := pipePair(chaos)
	done := make(chan []byte, 1)
	go func() { done <- readAll(t, r) }()

	if n, err := w.Write([]byte("vanish")); n != 6 || err != nil {
		t.Fatalf("dropped write reported n=%d err=%v", n, err)
	}
	// Budget spent: the second write must pass through.
	if _, err := w.Write([]byte("arrive")); err != nil {
		t.Fatalf("post-budget write failed: %v", err)
	}
	w.Close()
	got := <-done
	if string(got) != "arrive" {
		t.Fatalf("peer read %q, want only the post-budget bytes", got)
	}
	st := chaos.Stats()
	if st.Dropped != 1 {
		t.Fatalf("stats %+v, want 1 drop", st)
	}
}

// TestConnChaosTruncate: a truncated write must deliver a strict prefix
// and then kill the connection — the peer reads a cut-short stream.
func TestConnChaosTruncate(t *testing.T) {
	chaos := NewConnChaos(3).WithTruncate(1).WithBudget(1)
	w, r := pipePair(chaos)
	done := make(chan []byte, 1)
	go func() { done <- readAll(t, r) }()

	payload := bytes.Repeat([]byte{0xab}, 64)
	n, err := w.Write(payload)
	if err == nil {
		t.Fatal("truncated write reported success")
	}
	if n >= len(payload) {
		t.Fatalf("truncation delivered %d of %d bytes", n, len(payload))
	}
	got := <-done
	if len(got) != n {
		t.Fatalf("peer read %d bytes, writer reported %d", len(got), n)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write on a killed conn succeeded")
	}
	if st := chaos.Stats(); st.Truncated != 1 {
		t.Fatalf("stats %+v, want 1 truncation", st)
	}
}

// TestConnChaosKillAfter: the byte budget must kill the connection
// mid-stream at a deterministic point.
func TestConnChaosKillAfter(t *testing.T) {
	chaos := NewConnChaos(5).WithKillAfter(10)
	w, r := pipePair(chaos)
	done := make(chan []byte, 1)
	go func() { done <- readAll(t, r) }()

	if _, err := w.Write(bytes.Repeat([]byte{1}, 8)); err != nil {
		t.Fatalf("pre-budget write: %v", err)
	}
	n, err := w.Write(bytes.Repeat([]byte{2}, 8)) // crosses the 10-byte line
	if err == nil {
		t.Fatal("write across the kill point reported success")
	}
	if n != 2 {
		t.Fatalf("kill point delivered %d extra bytes, want 2", n)
	}
	if got := <-done; len(got) != 10 {
		t.Fatalf("peer read %d bytes, want exactly 10", len(got))
	}
	if st := chaos.Stats(); st.Killed != 1 {
		t.Fatalf("stats %+v, want 1 kill", st)
	}
}

// TestConnChaosDeterministic: the same seed must produce the same fault
// schedule.
func TestConnChaosDeterministic(t *testing.T) {
	run := func() ConnChaosStats {
		chaos := NewConnChaos(11).WithDrop(0.3).WithTruncate(0.2)
		w, r := pipePair(chaos)
		go func() { readAll(t, r) }()
		for i := 0; i < 50; i++ {
			if _, err := w.Write([]byte("0123456789")); err != nil {
				break // killed by a truncation — part of the schedule
			}
		}
		w.Close()
		return chaos.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different schedules: %+v vs %+v", a, b)
	}
}
