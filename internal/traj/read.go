package traj

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strings"
)

// Kind tags a decoded trajectory record.
type Kind uint8

// Record kinds, one per opcode.
const (
	// KindHop is one executed vacancy hop.
	KindHop Kind = iota
	// KindClip is a clipped interval boundary (three RNG draws, clock
	// pinned to the limit).
	KindClip
	// KindSegment is a completed parallel sweep.
	KindSegment
	// KindSnapshot names a full-state snapshot file next to the log.
	KindSnapshot
	// KindRecovery marks a supervised rollback to a committed mark.
	KindRecovery
)

// String names the record kind.
func (k Kind) String() string {
	switch k {
	case KindHop:
		return "hop"
	case KindClip:
		return "clip"
	case KindSegment:
		return "segment"
	case KindSnapshot:
		return "snapshot"
	case KindRecovery:
		return "recovery"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one decoded trajectory record. Fields are populated per
// Kind: hops use Slot/Dir/DeltaT, clips use Limit, segments use
// Seg/Duration/Time/Hops, snapshots use Hops/Time/Name, recoveries use
// Hops/Time/Detail. Time and Hops are absolute run state.
type Record struct {
	// Kind selects which of the fields below are meaningful.
	Kind Kind
	// Slot, Dir and DeltaT describe a hop: the vacancy slot, the jump
	// direction, and the residence time drawn for the step.
	Slot   int
	Dir    int
	DeltaT float64
	// Limit is a clip's time cap.
	Limit float64
	// Seg and Duration describe a parallel segment: its ordinal and its
	// simulated duration.
	Seg      uint64
	Duration float64
	// Time and Hops are the absolute run state stamped on segment,
	// snapshot and recovery records.
	Time float64
	Hops int64
	// Name is a snapshot's sidecar file name; Detail is a recovery
	// record's reason.
	Name   string
	Detail string
}

// Log is a fully decoded trajectory log.
type Log struct {
	// Mode is serial or parallel, from the begin record.
	Mode Mode
	// StartHops and StartTime are the run state at the begin record.
	StartHops int64
	StartTime float64
	// Begun reports whether the log holds a begin record; a freshly
	// created log that crashed before its first commit does not.
	Begun bool
	// Records lists every record after begin, in order.
	Records []Record
	// Truncated reports whether a torn tail (short or CRC-failing final
	// frame) was dropped during decode.
	Truncated bool
	// Hops and Time are the absolute run state at the end of the log.
	Hops int64
	Time float64
}

// scanState threads per-record validation and state accumulation
// through a frame-by-frame decode. The accumulated (hops, time) mirror
// the recorder's own counters operation-for-operation, so they are
// bit-exact against the engine's clock.
type scanState struct {
	seenBegin bool
	mode      Mode
	startHops int64
	startTime float64
	hops      int64
	time      float64
}

// nextFrame extracts the next CRC-valid frame payload from data,
// returning the payload, the total frame length consumed and whether a
// full valid frame was present. Anything short or CRC-failing is a torn
// tail: the caller stops there.
func nextFrame(data []byte) (payload []byte, n int64, ok bool) {
	if len(data) < 4 {
		return nil, 0, false
	}
	ln := binary.LittleEndian.Uint32(data)
	if ln == 0 || ln > maxFramePayload {
		return nil, 0, false
	}
	total := int64(4) + int64(ln) + 4
	if int64(len(data)) < total {
		return nil, 0, false
	}
	payload = data[4 : 4+ln]
	crc := binary.LittleEndian.Uint32(data[4+ln:])
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, total, true
}

// parseRecords decodes every record in one frame payload, validating
// against and updating st. emit, if non-nil, receives each record after
// the begin record. Errors here are hard: the frame's CRC already
// proved the bytes are what the writer wrote.
func parseRecords(payload []byte, st *scanState, emit func(Record) error) error {
	p := payload
	for len(p) > 0 {
		op := p[0]
		p = p[1:]
		if op == opBegin {
			if st.seenBegin {
				return fmt.Errorf("duplicate begin record")
			}
			if len(p) < 1 {
				return fmt.Errorf("short begin record")
			}
			m := Mode(p[0])
			if m != ModeSerial && m != ModeParallel {
				return fmt.Errorf("begin record with invalid mode %d", p[0])
			}
			p = p[1:]
			hops, rest, err := takeUvarint(p)
			if err != nil {
				return fmt.Errorf("begin hops: %w", err)
			}
			t, rest, err := takeF64(rest)
			if err != nil {
				return fmt.Errorf("begin time: %w", err)
			}
			if !finite(t) || t < 0 || hops > 1<<62 {
				return fmt.Errorf("begin record with invalid state hops=%d t=%v", hops, t)
			}
			p = rest
			st.seenBegin = true
			st.mode = m
			st.startHops = int64(hops)
			st.startTime = t
			st.hops = int64(hops)
			st.time = t
			continue
		}
		if !st.seenBegin {
			return fmt.Errorf("record 0x%02x before begin", op)
		}
		var rec Record
		switch {
		case op >= opHopBase && op <= opHopBase|7:
			slot, rest, err := takeUvarint(p)
			if err != nil {
				return fmt.Errorf("hop slot: %w", err)
			}
			if slot >= maxSlot {
				return fmt.Errorf("hop slot %d out of range", slot)
			}
			dt, rest, err := takeF64(rest)
			if err != nil {
				return fmt.Errorf("hop Δt: %w", err)
			}
			if !finite(dt) || dt < 0 {
				return fmt.Errorf("hop with invalid Δt %v", dt)
			}
			p = rest
			st.hops++
			st.time += dt
			rec = Record{Kind: KindHop, Slot: int(slot), Dir: int(op & 7), DeltaT: dt, Hops: st.hops, Time: st.time}
		case op == opClip:
			limit, rest, err := takeF64(p)
			if err != nil {
				return fmt.Errorf("clip limit: %w", err)
			}
			if !finite(limit) || limit < st.time {
				return fmt.Errorf("clip limit %v below clock %v", limit, st.time)
			}
			p = rest
			st.time = limit
			rec = Record{Kind: KindClip, Limit: limit, Hops: st.hops, Time: st.time}
		case op == opSegment:
			seg, rest, err := takeUvarint(p)
			if err != nil {
				return fmt.Errorf("segment index: %w", err)
			}
			dur, rest, err := takeF64(rest)
			if err != nil {
				return fmt.Errorf("segment duration: %w", err)
			}
			t, rest, err := takeF64(rest)
			if err != nil {
				return fmt.Errorf("segment time: %w", err)
			}
			hops, rest, err := takeUvarint(rest)
			if err != nil {
				return fmt.Errorf("segment hops: %w", err)
			}
			if !finite(dur) || dur < 0 || !finite(t) || t < st.time || int64(hops) < st.hops || hops > 1<<62 {
				return fmt.Errorf("segment record out of order (d=%v t=%v hops=%d)", dur, t, hops)
			}
			p = rest
			st.hops = int64(hops)
			st.time = t
			rec = Record{Kind: KindSegment, Seg: seg, Duration: dur, Time: t, Hops: int64(hops)}
		case op == opSnapshot || op == opRecovery:
			hops, rest, err := takeUvarint(p)
			if err != nil {
				return fmt.Errorf("record hops: %w", err)
			}
			t, rest, err := takeF64(rest)
			if err != nil {
				return fmt.Errorf("record time: %w", err)
			}
			s, rest, err := takeString(rest)
			if err != nil {
				return fmt.Errorf("record string: %w", err)
			}
			if int64(hops) != st.hops || t != st.time {
				return fmt.Errorf("record state (hops=%d t=%v) disagrees with accumulated (hops=%d t=%v)", hops, t, st.hops, st.time)
			}
			p = rest
			if op == opSnapshot {
				if strings.ContainsAny(s, "/\\") || s == "" {
					return fmt.Errorf("snapshot name %q is not a bare file name", s)
				}
				rec = Record{Kind: KindSnapshot, Hops: int64(hops), Time: t, Name: s}
			} else {
				rec = Record{Kind: KindRecovery, Hops: int64(hops), Time: t, Detail: s}
			}
		default:
			return fmt.Errorf("unknown opcode 0x%02x", op)
		}
		if emit != nil {
			if err := emit(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Decode reads a whole trajectory log from r, tolerating a torn tail
// (truncated or CRC-failing final frame) but failing closed on any
// corruption inside a CRC-valid frame. It never panics on hostile
// input; FuzzReadTrajLog holds it to that.
func Decode(r io.Reader) (*Log, error) {
	data, err := io.ReadAll(io.LimitReader(r, 1<<30))
	if err != nil {
		return nil, fmt.Errorf("traj: reading log: %w", err)
	}
	if len(data) < headerLen || string(data[:headerLen]) != Magic {
		return nil, fmt.Errorf("traj: not a TKMCTRJ1 trajectory log")
	}
	lg := &Log{}
	st := &scanState{}
	rest := data[headerLen:]
	for {
		payload, n, ok := nextFrame(rest)
		if !ok {
			lg.Truncated = len(rest) > 0
			break
		}
		err := parseRecords(payload, st, func(rec Record) error {
			lg.Records = append(lg.Records, rec)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("traj: corrupt record in CRC-valid frame: %w", err)
		}
		rest = rest[n:]
	}
	lg.Begun = st.seenBegin
	lg.Mode = st.mode
	lg.StartHops = st.startHops
	lg.StartTime = st.startTime
	lg.Hops = st.hops
	lg.Time = st.time
	return lg, nil
}

// ReadLog decodes the trajectory log at path.
func ReadLog(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

func takeUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated or overlong uvarint")
	}
	return v, p[n:], nil
}

func takeF64(p []byte) (float64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("truncated float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p)), p[8:], nil
}

func takeString(p []byte) (string, []byte, error) {
	n, rest, err := takeUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if n > maxStringLen {
		return "", nil, fmt.Errorf("string length %d exceeds limit", n)
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("truncated string")
	}
	return string(rest[:n]), rest[n:], nil
}
