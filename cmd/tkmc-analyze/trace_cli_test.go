package main

import (
	"path/filepath"
	"strings"
	"testing"

	"tensorkmc/internal/telemetry"
	"tensorkmc/internal/telemetry/trace"
)

// TestTraceSubcommand drives runTrace over two flushed process journals
// and checks the rendered tree nests the cross-process span.
func TestTraceSubcommand(t *testing.T) {
	dir := t.TempDir()
	engine := telemetry.NewJournal(16)
	root := trace.New()
	run := trace.Start(engine, root, "run")
	seg := trace.Start(engine, run.Context(), "segment")
	server := telemetry.NewJournal(16)
	serve := trace.Start(server, seg.Context(), "serve cache=miss")
	serve.End()
	seg.End()
	run.End()

	enginePath := filepath.Join(dir, "engine.jsonl")
	serverPath := filepath.Join(dir, "server.jsonl")
	if err := engine.FlushFile(enginePath); err != nil {
		t.Fatal(err)
	}
	if err := server.FlushFile(serverPath); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := runTrace(&sb, []string{root.TraceID(), enginePath, serverPath}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "trace "+root.TraceID()+": 3 spans") {
		t.Fatalf("header missing:\n%s", out)
	}
	// The serve span is indented two levels under run -> segment.
	if !strings.Contains(out, "    serve cache=miss") {
		t.Fatalf("serve span not nested under the segment:\n%s", out)
	}
	if !strings.Contains(out, "["+serverPath+"]") {
		t.Fatalf("serve span not attributed to its source journal:\n%s", out)
	}
}

// TestTraceSubcommandErrors: a trace with no spans is an error naming
// the ID, malformed IDs and missing args are rejected up front.
func TestTraceSubcommandErrors(t *testing.T) {
	dir := t.TempDir()
	jr := telemetry.NewJournal(4)
	sp := trace.Start(jr, trace.New(), "lonely")
	sp.End()
	path := filepath.Join(dir, "j.jsonl")
	if err := jr.FlushFile(path); err != nil {
		t.Fatal(err)
	}

	err := runTrace(&strings.Builder{}, []string{"00000000deadbeef", path})
	if err == nil || !strings.Contains(err.Error(), "no spans for trace 00000000deadbeef") {
		t.Fatalf("absent trace: err = %v", err)
	}
	if err := runTrace(&strings.Builder{}, []string{"not-hex", path}); err == nil {
		t.Fatal("malformed trace ID accepted")
	}
	if err := runTrace(&strings.Builder{}, []string{"00000000deadbeef"}); err == nil ||
		!strings.Contains(err.Error(), "trace wants a trace ID") {
		t.Fatalf("missing journal args: err = %v", err)
	}
	if err := runTrace(&strings.Builder{}, []string{"00000000deadbeef", filepath.Join(dir, "absent.jsonl")}); err == nil {
		t.Fatal("unreadable journal accepted")
	}
}

// TestUsageListsSubcommands pins the actionable-usage contract: a typo'd
// subcommand must surface every invocation form, not a bare flag error.
func TestUsageListsSubcommands(t *testing.T) {
	var sb strings.Builder
	usage(&sb)
	out := sb.String()
	for _, want := range []string{"-box", "replay", "trace <trace-id>", "subcommands:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("usage missing %q:\n%s", want, out)
		}
	}
}
