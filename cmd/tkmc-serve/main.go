// Command tkmc-serve exposes a shared evaluation service over TCP: one
// potential, one content-addressed vacancy-system cache, one batching
// worker pool — any number of KMC clients. Remote engines connect with
// evalserve.Dial (which implements kmc.Model) and submit canonical
// vacancy environments; identical environments from different clients
// are answered from the same cache entry, and concurrent misses are
// coalesced into wide fused batches.
//
// Usage:
//
//	tkmc-serve [-addr host:port] [-potential eam|bondcount|<nnp-file>]
//	           [-lattice Å] [-cutoff Å]
//	           [-cache N] [-shards N] [-batch N] [-workers N] [-f32]
//	           [-fleet N] [-idle seconds]
//	           [-telemetry host:port] [-event-log path]
//
// -telemetry opens the shared observability endpoint (/metrics,
// /metrics.json, /healthz, /events, /debug/pprof — the same mux the
// tensorkmc runner serves) so a long-lived service is scrapable,
// federable and profilable. -event-log flushes the node's
// flight-recorder journal (including serve-side trace spans) as JSONL
// on exit, where `tkmc-analyze trace` can pick it up.
//
// -fleet N runs N independent serve nodes in one process — each with
// its own listener, cache and worker pool — for testing and
// single-machine fleets. Ports increment from -addr (with port 0 every
// node gets its own kernel-picked port); each node prints its own
// "listening on" banner. Clients shard across the nodes with
// evalserve.DialFleet or the tensorkmc `eval_fleet` deck key.
//
// -idle bounds how long a client session may sit silent before the
// server reaps the connection (0 = the 2-minute default, negative =
// never reap).
//
// The server prints its bound address on startup (use -addr 127.0.0.1:0
// to let the kernel pick a port) and, on SIGINT/SIGTERM, drains the
// worker pools and prints the final service counters.
//
// Exit codes:
//
//	0  clean shutdown
//	1  runtime failure (listen error)
//	2  usage error (bad flag, unloadable potential)
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"tensorkmc/internal/bondcount"
	"tensorkmc/internal/eam"
	"tensorkmc/internal/encoding"
	"tensorkmc/internal/evalserve"
	"tensorkmc/internal/kmc"
	"tensorkmc/internal/nnp"
	"tensorkmc/internal/telemetry"
	"tensorkmc/internal/units"
)

const (
	exitClean   = 0
	exitRuntime = 1
	exitUsage   = 2
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// realMain is the testable entry point: it serves until a signal
// arrives, then drains and reports.
func realMain(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("tkmc-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7865", "TCP listen address")
	potName := fs.String("potential", "eam", "'eam', 'bondcount', or a trained NNP file path")
	latticeA := fs.Float64("lattice", units.LatticeConstantFe, "lattice constant (Å)")
	cutoff := fs.Float64("cutoff", units.CutoffStandard, "interaction cutoff (Å)")
	cache := fs.Int("cache", 0, "cache capacity in entries (0 = default)")
	shards := fs.Int("shards", 0, "cache shard count (0 = default)")
	batch := fs.Int("batch", 0, "max systems per fused batch (0 = default)")
	workers := fs.Int("workers", 0, "evaluation worker pool size (0 = default)")
	f32 := fs.Bool("f32", false, "run fused NNP batches in f32 (not bit-identical to f64)")
	fleetN := fs.Int("fleet", 1, "independent serve nodes in this process (ports increment from -addr)")
	idleSecs := fs.Float64("idle", 0, "idle session reap timeout in seconds (0 = default, negative = never)")
	drainSecs := fs.Float64("drain", 5, "seconds to let in-flight sessions finish on SIGTERM before force-closing")
	teleAddr := fs.String("telemetry", "", "telemetry HTTP address (/metrics, /healthz, /readyz, /events, pprof); empty = off")
	eventLog := fs.String("event-log", "", "flush the flight-recorder journal (including serve-side trace spans) as JSONL to this path on exit")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *fleetN < 1 {
		fmt.Fprintln(stderr, "tkmc-serve: -fleet wants at least one node")
		return exitUsage
	}

	var set *telemetry.Set
	if *teleAddr != "" || *eventLog != "" {
		set = telemetry.NewSet()
	}
	if *eventLog != "" {
		// Flushed on every exit path: the journal is the server's black
		// box, and trace assembly reads it after the process is gone.
		defer func() {
			if err := set.Events().FlushFile(*eventLog); err != nil {
				fmt.Fprintln(stderr, "tkmc-serve: flushing event log:", err)
			}
		}()
	}
	tb := encoding.New(*latticeA, *cutoff)
	opts := evalserve.Options{
		Capacity: *cache, Shards: *shards, MaxBatch: *batch, Workers: *workers,
		Telemetry: set,
	}.WithDefaults()
	be, err := buildBackend(*potName, tb, opts, *f32)
	if err != nil {
		fmt.Fprintln(stderr, "tkmc-serve:", err)
		return exitUsage
	}
	if fb, ok := be.(*evalserve.FusionBackend); ok {
		fb.SetTelemetry(set)
	}
	// The readiness probe flips to 503 the moment a drain begins, while
	// /healthz keeps reporting liveness — load balancers stop routing new
	// clients to a node that is letting its attached simulations finish.
	var draining atomic.Bool
	if set != nil {
		tsrv, err := telemetry.ServeReady(*teleAddr, set, func() (bool, string) {
			if draining.Load() {
				return false, "draining"
			}
			return true, ""
		})
		if err != nil {
			fmt.Fprintln(stderr, "tkmc-serve:", err)
			return exitRuntime
		}
		defer tsrv.Close()
		fmt.Fprintf(stdout, "tkmc-serve: telemetry on http://%s/metrics\n", tsrv.Addr())
	}

	feOpts := evalserve.FrontendOptions{}
	if *idleSecs < 0 {
		feOpts.IdleTimeout = -1
	} else if *idleSecs > 0 {
		feOpts.IdleTimeout = time.Duration(*idleSecs * float64(time.Second))
	}

	// Each fleet node is fully independent — its own listener, cache and
	// worker pool — so killing one (or the whole process holding several)
	// behaves exactly like losing real machines.
	srvs := make([]*evalserve.Server, *fleetN)
	fes := make([]*evalserve.Frontend, *fleetN)
	for i := 0; i < *fleetN; i++ {
		nodeBE := be
		if i > 0 {
			if nodeBE, err = buildBackend(*potName, tb, opts, *f32); err != nil {
				fmt.Fprintln(stderr, "tkmc-serve:", err)
				return exitUsage
			}
			if fb, ok := nodeBE.(*evalserve.FusionBackend); ok {
				fb.SetTelemetry(set)
			}
		}
		nodeAddr, err := fleetAddr(*addr, i)
		if err != nil {
			fmt.Fprintln(stderr, "tkmc-serve:", err)
			return exitUsage
		}
		ln, err := net.Listen("tcp", nodeAddr)
		if err != nil {
			fmt.Fprintln(stderr, "tkmc-serve:", err)
			return exitRuntime
		}
		srvs[i] = evalserve.New(nodeBE, opts)
		fes[i] = evalserve.ServeOptions(srvs[i], ln, feOpts)
		fmt.Fprintf(stdout, "tkmc-serve: listening on %s (potential %s, a=%g Å, rcut=%g Å, N_all=%d)\n",
			fes[i].Addr(), *potName, *latticeA, *cutoff, tb.NAll)
	}
	fmt.Fprintf(stdout, "tkmc-serve: cache %d entries × %d shards, batches ≤ %d on %d workers\n",
		opts.Capacity, opts.Shards, opts.MaxBatch, opts.Workers)

	<-sig
	// Graceful drain: every node stops accepting at once (new connection
	// attempts are refused), then in-flight sessions get the shared
	// deadline to finish. The exit is clean either way — a session that
	// outlives the deadline is force-closed and its client falls back or
	// fails over, exactly as if the node had been lost.
	draining.Store(true)
	deadline := time.Now().Add(time.Duration(*drainSecs * float64(time.Second)))
	fmt.Fprintf(stdout, "tkmc-serve: draining %d node(s)\n", len(fes))
	for i := range fes {
		left := time.Until(deadline)
		if left < 0 {
			left = 0
		}
		forced, _ := fes[i].Drain(left)
		if forced > 0 {
			fmt.Fprintf(stdout, "tkmc-serve: node %d force-closed %d session(s) at the drain deadline\n", i, forced)
		}
		srvs[i].Close()
		fmt.Fprintln(stdout, "tkmc-serve:", srvs[i].Stats().String())
	}
	return exitClean
}

// fleetAddr derives node i's listen address: explicit ports increment
// per node, port 0 lets the kernel pick one per node.
func fleetAddr(addr string, i int) (string, error) {
	if i == 0 {
		return addr, nil
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("-addr %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("-addr %q: non-numeric port with -fleet > 1", addr)
	}
	if port == 0 {
		return net.JoinHostPort(host, "0"), nil
	}
	return net.JoinHostPort(host, strconv.Itoa(port+i)), nil
}

// buildBackend maps the -potential flag to an evaluation backend over
// the given tables. Any name that is not a built-in potential is loaded
// as a trained NNP file.
func buildBackend(name string, tb *encoding.Tables, opts evalserve.Options, f32 bool) (evalserve.Backend, error) {
	switch name {
	case "eam":
		params := eam.Default()
		if params.RCut > tb.Rcut {
			// Narrow the potential to the table cutoff so short-cutoff
			// services work out of the box.
			params.RCut = tb.Rcut
			if params.RIn >= params.RCut {
				params.RIn = 0.9 * params.RCut
			}
		}
		pot := eam.New(params)
		return evalserve.NewModelBackend(func() kmc.Model {
			return eam.NewFastRegionEvaluator(pot, tb)
		}, opts.Workers), nil
	case "bondcount":
		params := bondcount.FeCu()
		return evalserve.NewModelBackend(func() kmc.Model {
			return bondcount.NewEvaluator(params, tb)
		}, opts.Workers), nil
	default:
		pot, err := nnp.LoadFile(name)
		if err != nil {
			return nil, fmt.Errorf("loading NNP %q: %w", name, err)
		}
		if pot.Desc.Rcut > tb.Rcut+1e-9 {
			return nil, fmt.Errorf("potential cutoff %g exceeds table cutoff %g", pot.Desc.Rcut, tb.Rcut)
		}
		prec := evalserve.F64
		if f32 {
			prec = evalserve.F32
		}
		return evalserve.NewFusionBackend(pot, tb, prec), nil
	}
}
