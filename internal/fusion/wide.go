package fusion

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tensorkmc/internal/nnp"
	"tensorkmc/internal/sw"
)

// The wide-GEMM big-fusion operator: the same Algorithm 1 kernel as
// fusion.Run(BigFusion, ...), restructured for the host side. The batch
// is cut into cache-resident row tiles; each tile runs through every
// layer inside a reusable scratch buffer (no per-layer allocation, no
// cold-memory zeroing, activations stay in L1/L2), and tiles are handed
// to a goroutine pool so multi-core hosts overlap them.
//
// Determinism contract: every output row depends only on its own input
// row and runs the exact float-operation sequence of the serial path
// (ascending-k accumulation with the MatMul zero-skip, then bias, then
// activation — see nnp.ForwardBlockInto). Tiling and worker scheduling
// only change WHICH goroutine computes a row, never the operations in
// it, so the output is bit-identical to Run(BigFusion, ...) for any
// worker count and any tile size.
//
// The modelled Sunway cost (Result.Ct, Result.Seconds, Result.PeakLDM)
// is accounted analytically with the same traffic model as the serial
// big-fusion run — the wide operator is a host-scheduling improvement;
// the simulated accelerator executes the same kernel either way.

// WideRowBlock is the row-tile height of the wide operator. 64 rows ×
// the widest layer (128 for the production network) × 8 bytes is 64 KiB
// of activation state per worker — comfortably L2-resident, and a
// multiple of the paper's m_block so the modelled DMA pattern matches.
const WideRowBlock = 64

// WideWorkers resolves a worker-count request: non-positive means one
// worker per available CPU (GOMAXPROCS).
func WideWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunBigFusionWide executes the big-fusion operator as a blocked,
// goroutine-parallel wide GEMM in float64. Output and modelled cost are
// bit-identical to Run(BigFusion, net, x, arch) for every workers value;
// the function is safe for concurrent callers (all shared state is
// read-only network parameters).
func RunBigFusionWide(net *nnp.Network, x nnp.Matrix, arch sw.Arch, workers int) Result {
	cg := sw.NewCoreGroup(arch)
	accountBigFusion(cg, net, x.Rows)
	out := nnp.NewMatrix(x.Rows, net.OutputDim())
	forEachTile(x.Rows, WideWorkers(workers), func() tileFunc {
		s := &nnp.BlockScratch{}
		return func(lo, hi int) { net.ForwardBlockInto(x, out, lo, hi, s) }
	})
	return finishResult(cg, arch, out)
}

// RunBigFusionWideF32 is the single-precision wide operator: float32
// accumulation matching RunBigFusionF32 bit for bit (the quantised
// network's ascending-k, zero-skip row kernel), with the same blocked
// tiling and worker pool as the f64 path. Safe for concurrent callers.
func RunBigFusionWideF32(net *nnp.Network, x nnp.Matrix, arch sw.Arch, workers int) Result {
	cg := sw.NewCoreGroup(arch)
	accountBigFusion(cg, net, x.Rows)
	q := net.Quantize()
	xf := nnp.ToF32(x)
	outF := nnp.NewMatrix32(x.Rows, net.OutputDim())
	forEachTile(x.Rows, WideWorkers(workers), func() tileFunc {
		s := &nnp.BlockScratch32{}
		return func(lo, hi int) { q.ForwardBlockInto(xf, outF, lo, hi, s) }
	})
	return finishResult(cg, arch, outF.ToF64())
}

// WideRun is a streaming wide-GEMM big-fusion execution: the modelled
// accelerator cost of an m-row launch is accounted up front, and callers
// feed row blocks as they are produced (e.g. straight out of the feature
// operator, while the rows are still cache-hot) instead of materialising
// the full fused input matrix. Row independence makes the result
// bit-identical to RunBigFusionWide / Run(BigFusion) of the same rows in
// the same positions, for any chunking.
//
// Concurrency: Rows may be called from many goroutines as long as their
// [g0, g0+x.Rows) output ranges are disjoint and each passes a private
// scratch. Finish must happen-after every Rows call (e.g. after a
// WaitGroup join).
type WideRun struct {
	net  *nnp.Network
	cg   *sw.CoreGroup
	arch sw.Arch
	// Out is the m×OutputDim output matrix, filled by Rows calls.
	Out nnp.Matrix
}

// BeginBigFusionWide opens a streaming wide run for m total rows,
// charging the simulated core group exactly as a one-shot m-row launch
// would.
func BeginBigFusionWide(net *nnp.Network, m int, arch sw.Arch) *WideRun {
	cg := sw.NewCoreGroup(arch)
	accountBigFusion(cg, net, m)
	return &WideRun{net: net, cg: cg, arch: arch, Out: nnp.NewMatrix(m, net.OutputDim())}
}

// Rows forwards every row of x through the network into Out rows
// [g0, g0+x.Rows). x is read-only; s must be private to the caller.
func (r *WideRun) Rows(x nnp.Matrix, g0 int, s *nnp.BlockScratch) {
	if x.Rows == 0 {
		return
	}
	oc := r.Out.Cols
	sub := nnp.Matrix{Rows: x.Rows, Cols: oc, Data: r.Out.Data[g0*oc : (g0+x.Rows)*oc]}
	r.net.ForwardBlockInto(x, sub, 0, x.Rows, s)
}

// Finish packages the output and the up-front modelled cost.
func (r *WideRun) Finish() Result {
	return finishResult(r.cg, r.arch, r.Out)
}

// tileFunc processes one row tile [lo, hi).
type tileFunc func(lo, hi int)

// forEachTile dispatches row tiles of WideRowBlock rows to a worker
// pool. mk is called once per worker to build its private tile function
// (closing over per-worker scratch); tiles are claimed from an atomic
// cursor, so the assignment of tiles to workers is scheduling-dependent
// but the computed rows are disjoint and row-independent — the result
// does not depend on the schedule. With one worker everything runs
// inline on the caller's goroutine.
func forEachTile(rows, workers int, mk func() tileFunc) {
	nTiles := (rows + WideRowBlock - 1) / WideRowBlock
	if workers > nTiles {
		workers = nTiles
	}
	if workers <= 1 {
		f := mk()
		for lo := 0; lo < rows; lo += WideRowBlock {
			hi := lo + WideRowBlock
			if hi > rows {
				hi = rows
			}
			f(lo, hi)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := mk()
			for {
				t := int(cursor.Add(1)) - 1
				if t >= nTiles {
					return
				}
				lo := t * WideRowBlock
				hi := lo + WideRowBlock
				if hi > rows {
					hi = rows
				}
				f(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// accountBigFusion charges the simulated core group with the exact
// counter sequence of the serial big-fusion run for an m-row batch:
// parameter distribution, per-CPE LDM residency, per-block input/output
// DMA, per-block flops and per-iteration RMA parameter broadcasts. It
// performs no numerics, so the wide paths can run them separately (and
// in parallel) while reporting the same modelled cost.
func accountBigFusion(cg *sw.CoreGroup, net *nnp.Network, m int) {
	if len(net.Layers) > cg.Arch.CPECols {
		panic(fmt.Sprintf("fusion: %d layers exceed the %d CPE columns (paper supports up to eight)",
			len(net.Layers), cg.Arch.CPECols))
	}
	nCPE := cg.Arch.NumCPEs()
	const mBlock = 32 // the paper's m_block (matches runBigFusion)

	maxW := 0
	totalParamBytes := 0
	for _, l := range net.Layers {
		if l.W.Cols > maxW {
			maxW = l.W.Cols
		}
		if l.W.Rows > maxW {
			maxW = l.W.Rows
		}
		totalParamBytes += (len(l.W.Data) + len(l.B)) * 4
	}
	perCPEShare := (totalParamBytes/len(net.Layers) + cg.Arch.CPERows - 1) / cg.Arch.CPERows
	for c := 0; c < nCPE; c++ {
		cg.LDMs[c].Alloc(perCPEShare)
	}
	dmaTransfer(cg, totalParamBytes)

	stateBuf := 2 * mBlock * maxW * 4
	layerBuf := 0
	for _, l := range net.Layers {
		if b := (len(l.W.Data) + len(l.B)) * 4; b > layerBuf {
			layerBuf = b
		}
	}
	for c := 0; c < nCPE; c++ {
		cg.LDMs[c].Alloc(stateBuf + layerBuf)
	}

	inDim := net.InputDim()
	for start := 0; start < m; start += nCPE * mBlock {
		for cpe := 0; cpe < nCPE; cpe++ {
			lo := start + cpe*mBlock
			if lo >= m {
				break
			}
			hi := lo + mBlock
			if hi > m {
				hi = m
			}
			rows := hi - lo
			cg.DMAGet(cpe, rows*inDim*4)
			for _, layer := range net.Layers {
				cg.Ct.VectorFlops += float64(2*rows*layer.W.Rows*layer.W.Cols) + float64(2*rows*layer.W.Cols)
			}
			cg.DMAPut(cpe, rows*net.OutputDim()*4)
		}
		for _, l := range net.Layers {
			cg.RMARowBroadcast((len(l.W.Data) + len(l.B)) * 4)
		}
	}
	for c := 0; c < nCPE; c++ {
		cg.LDMs[c].Free(stateBuf + layerBuf)
	}
}

// finishResult packages the output and the accumulated modelled cost
// (big-fusion overlap semantics) into a Result.
func finishResult(cg *sw.CoreGroup, arch sw.Arch, out nnp.Matrix) Result {
	res := Result{Out: out, Ct: cg.Ct, Seconds: cg.Ct.Time(arch, true)}
	for _, l := range cg.LDMs {
		if l.Peak() > res.PeakLDM {
			res.PeakLDM = l.Peak()
		}
	}
	return res
}
