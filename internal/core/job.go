package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// This file is the run-as-job entry point: the hooks a control plane
// (internal/ctl) injects to turn a one-shot simulation into a unit of
// schedulable, preemptible, restartable work. The contract rests on the
// checkpoint discipline: a job's entire resumable state lives in its
// state directory, so stopping a job and restoring a job are the same
// operation (preemption-as-restore), and a controller that crashed and
// restarted re-adopts a job exactly the way a preempted job resumes.

// ErrJobStopped is the sentinel wrapped into the error returned when a
// controlled run observes its stop signal at a segment boundary. It is
// a clean interruption, not a failure: the state on disk is the
// committed segment's checkpoint, and a later run from the same job
// directory resumes the identical trajectory.
var ErrJobStopped = errors.New("core: job stopped at segment boundary")

// JobControl carries the stop/resume hooks a control plane injects into
// a supervised run. The zero value is a valid no-op (never stops, no
// observer).
type JobControl struct {
	// Stop, if non-nil, is polled at segment boundaries; once it is
	// closed (or delivers), the run checkpoints and returns an error
	// wrapping ErrJobStopped instead of starting the next segment.
	Stop <-chan struct{}
	// OnSegment, if non-nil, observes every committed segment — the
	// control plane's progress feed (WAL progress records and the SSE
	// observable stream both hang off it).
	OnSegment func(p JobProgress)
}

// Stopped reports whether the stop signal has fired.
func (jc *JobControl) Stopped() bool {
	if jc == nil || jc.Stop == nil {
		return false
	}
	select {
	case <-jc.Stop:
		return true
	default:
		return false
	}
}

// JobProgress is the per-segment account passed to JobControl.OnSegment.
type JobProgress struct {
	// Time is the committed simulated clock in seconds; Hops the
	// cumulative executed hop count.
	Time float64
	Hops int64
	// Isolated, Clusters and MaxCluster are the Cu precipitation
	// observables at the boundary (zero when analysis was skipped).
	Isolated   int
	Clusters   int
	MaxCluster int
}

// JobCheckpointPath returns the canonical checkpoint location inside a
// job's state directory. Everything a job needs to resume lives at this
// path (plus its rotated ".bak"), which is what makes preemption,
// controller crash recovery and migration all the same restore.
func JobCheckpointPath(dir string) string {
	return filepath.Join(dir, "checkpoint.tkmc")
}

// PrepareJob rewires a parsed simulation config to run as a controlled
// job out of the given state directory: the checkpoint path is forced to
// JobCheckpointPath(dir) (creating dir), and when that path already
// holds a loadable checkpoint — a preempted job, or one orphaned by a
// killed controller — it is loaded as the restart point. The returned
// bool reports whether a restore point was found.
//
// Any checkpoint/restart paths the deck itself carried are deliberately
// overridden: the job directory is the single source of truth for a
// job's resumable state, so two jobs submitted from the same deck text
// cannot alias each other's files.
func PrepareJob(cfg Config, dir string) (Config, bool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return cfg, false, fmt.Errorf("core: creating job directory: %w", err)
	}
	path := JobCheckpointPath(dir)
	cfg.CheckpointPath = path
	// In-run slicing is the control plane's job (it derives segment
	// boundaries deterministically from the deck); a nested
	// CheckpointEvery slicing would double up.
	cfg.CheckpointEvery = 0
	if _, err := os.Stat(path); err != nil {
		if _, bakErr := os.Stat(path + ".bak"); bakErr != nil {
			return cfg, false, nil // fresh job, no restore point
		}
	}
	ck, err := LoadCheckpointOrBackup(path)
	if err != nil {
		return cfg, false, fmt.Errorf("core: job has a checkpoint that will not load: %w", err)
	}
	cfg.Restart = ck
	cfg.InitialBox = nil
	return cfg, true, nil
}

// SegmentTarget returns the absolute clock target of 0-based segment k
// for a job of the given total duration sliced every seg seconds. The
// target is computed from the integer index — float64(k+1)*seg, clamped
// to duration — never by chaining subtractions, so a run resumed from
// the checkpoint at boundary k computes bit-identical targets to the
// uninterrupted run: the foundation of the preemption-as-restore and
// crash-recovery byte-identity guarantees.
func SegmentTarget(k int, seg, duration float64) float64 {
	if seg <= 0 {
		return duration
	}
	t := float64(k+1) * seg
	if t >= duration {
		return duration
	}
	return t
}

// SegmentIndex recovers the 0-based index of the next segment to run
// from a committed boundary clock. Boundary clocks sit within float dust
// of float64(k)*seg (serial segments clip the clock to the target
// exactly; parallel segments advance by the exact requested duration),
// so rounding is safe; clocks at or past duration mean the job is done
// and any target the index implies will clamp to duration.
func SegmentIndex(time, seg float64) int {
	if seg <= 0 || time <= 0 {
		return 0
	}
	k := int(time/seg + 0.5)
	// A mid-segment clock (possible only if the slicing changed between
	// incarnations) rounds to the nearest boundary; never let that skip
	// simulated time.
	if float64(k)*seg > time {
		k--
	}
	if k < 0 {
		k = 0
	}
	return k
}
