// Package sublattice implements the parallel AKMC method of Sec. 2.2: a
// spatial domain decomposition over message-passing ranks combined with
// the Shim–Amar synchronous sublattice algorithm. Each rank's domain is
// split into 2×2×2 sectors; all ranks process the same sector octant
// simultaneously for a quantum t_stop, so concurrently active vacancies
// on different ranks are separated by at least half a domain and
// boundary hops can never conflict. Ghost regions are synchronised
// between sectors (the paper's "sites in the boundary region must be
// updated in advance").
//
// The method is semirigorous (Shim & Amar 2005): within one sector
// window, boundary information is frozen, an approximation controlled by
// t_stop. The paper's scalability runs use the strict
// t_stop = 2×10⁻⁸ s; the same default is used here.
package sublattice

import (
	"errors"
	"fmt"
	"time"

	"tensorkmc/internal/encoding"
	"tensorkmc/internal/fault"
	"tensorkmc/internal/kmc"
	"tensorkmc/internal/lattice"
	"tensorkmc/internal/mpi"
	"tensorkmc/internal/rng"
	"tensorkmc/internal/telemetry"
)

// DefaultTStop is the paper's strict synchronisation interval (seconds).
const DefaultTStop = 2e-8

// Config describes a parallel run.
type Config struct {
	// PX, PY, PZ are ranks per axis; each must divide the box's cell
	// count on that axis.
	PX, PY, PZ int
	// Temperature in kelvin.
	Temperature float64
	// TStop is the sector synchronisation quantum in seconds
	// (DefaultTStop if zero).
	TStop float64
	// Seed drives all per-rank streams.
	Seed uint64
	// ExchangeTimeout bounds each sector-synchronisation collective.
	// Zero blocks forever (the pre-fault-tolerance behaviour); with a
	// timeout set, a rank that fails to reach the exchange makes the
	// whole sweep abort with an error naming the stalled ranks, so the
	// caller can recover from the last-good checkpoint.
	ExchangeTimeout time.Duration
	// Chaos, if non-nil, is installed on the run's message fabric to
	// inject faults under test control.
	Chaos *mpi.Chaos
	// Telemetry, if non-nil, instruments the sweep: rank hops bump
	// tkmc_step_total, sector-window KMC and sector exchanges get
	// run/segment/{sector,exchange} spans (summed over ranks, so their
	// totals are rank-seconds), and the message fabric exports per-rank
	// send/recv/timeout counters. Purely observational: the trajectory
	// is bit-identical with telemetry on or off.
	Telemetry *telemetry.Set
	// Speculate, when positive with a Prefetcher set, has each rank
	// predict the Speculate most probable hops of every refreshed
	// system and hand their post-hop environments to the Prefetcher as
	// cache warm-up. Ranks only speculate hops whose target stays in
	// their own interior (the surrounding environment is then fully
	// resident, ghosts included). Advisory and side-effect-free: the
	// trajectory is bit-identical with speculation on or off.
	Speculate  int
	Prefetcher kmc.Prefetcher
}

// Ranks returns the world size.
func (c Config) Ranks() int { return c.PX * c.PY * c.PZ }

// SiteChange is one occupancy update broadcast at sector synchronisation.
type SiteChange struct {
	Site lattice.Vec // canonical global coordinates
	New  lattice.Species
}

// RankStats reports one rank's work counters.
type RankStats struct {
	Hops         int64 // executed hops
	Discarded    int64 // events rejected by the t_stop window
	Sent         int64 // site changes broadcast
	Refills      int64 // VET rebuilds
	Speculations int64 // post-hop environments handed to the Prefetcher
}

// Result is the outcome of a parallel run.
type Result struct {
	// Box is the reconstructed global lattice after the run.
	Box *lattice.Box
	// Time is the simulated duration.
	Time float64
	// Stats is indexed by rank.
	Stats []RankStats
}

// Run executes a parallel AKMC simulation of `duration` seconds over the
// given global box (which is not modified; the evolved lattice is
// returned in the Result). factory must return a fresh kmc.Model per
// call — one per rank.
//
// With Config.ExchangeTimeout set, a rank that stalls (dies, hangs, or
// is held by the Chaos interposer) makes Run return an error naming the
// stalled ranks instead of hanging; the global box is then unmodified
// and the caller can resume from its last-good checkpoint.
func Run(box *lattice.Box, cfg Config, duration float64, factory func() kmc.Model) (*Result, error) {
	if cfg.TStop == 0 {
		cfg.TStop = DefaultTStop
	}
	validate(box, cfg, factory())
	nRanks := cfg.Ranks()
	results := make([]*rankState, nRanks)
	errs := make([]error, nRanks)
	w := mpi.NewWorld(nRanks)
	if cfg.Chaos != nil {
		w.SetChaos(cfg.Chaos)
	}
	if cfg.Telemetry != nil {
		w.SetTelemetry(cfg.Telemetry.Reg(), cfg.Telemetry.Events())
	}
	mpi.RunWorld(w, func(c *mpi.Comm) {
		// A corruption tripwire (NaN propensity, non-finite energy) fires
		// as a typed panic deep in the rate kernel; convert it into this
		// rank's error so the sweep aborts with the diagnostic instead of
		// crashing the process. Peers blocked on this rank's exchange are
		// released by their ExchangeTimeout.
		defer func() {
			if p := recover(); p != nil {
				switch e := p.(type) {
				case *fault.CorruptionError:
					errs[c.Rank()] = e
				case *fault.TransportError:
					// Remote evaluation failed past its retry budget:
					// retryable — the supervisor replays the segment.
					errs[c.Rank()] = e
				default:
					panic(p)
				}
			}
		}()
		r := newRank(c, box, cfg, factory())
		errs[c.Rank()] = r.run(duration)
		results[c.Rank()] = r
	})
	// A corrupted rank makes its peers stall out too; report the
	// corruption, not the secondary timeouts, so the supervisor can
	// classify the failure as non-retryable.
	for rank, err := range errs {
		var ce *fault.CorruptionError
		if errors.As(err, &ce) {
			return nil, fmt.Errorf("sublattice: sweep aborted on rank %d: %w", rank, err)
		}
	}
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sublattice: sweep aborted on rank %d: %w", rank, err)
		}
	}

	out := &Result{Time: duration, Stats: make([]RankStats, nRanks)}
	out.Box = lattice.NewBox(box.Nx, box.Ny, box.Nz, box.A)
	for i, r := range results {
		out.Stats[i] = r.stats
		r.dom.ForEachLocal(func(v lattice.Vec, idx int) {
			out.Box.Set(v, r.dom.Types()[idx])
		})
	}
	return out, nil
}

func validate(box *lattice.Box, cfg Config, model kmc.Model) {
	tb := model.Tables()
	if cfg.PX <= 0 || cfg.PY <= 0 || cfg.PZ <= 0 {
		panic(fmt.Sprintf("sublattice: invalid rank grid %dx%dx%d", cfg.PX, cfg.PY, cfg.PZ))
	}
	if box.Nx%cfg.PX != 0 || box.Ny%cfg.PY != 0 || box.Nz%cfg.PZ != 0 {
		panic("sublattice: rank grid does not divide the box")
	}
	g := tb.MaxExtent
	for _, a := range []struct{ n, p int }{{box.Nx, cfg.PX}, {box.Ny, cfg.PY}, {box.Nz, cfg.PZ}} {
		local := 2 * a.n / a.p
		if local < 2 {
			panic("sublattice: domain thinner than one cell")
		}
		if g > 2*a.n {
			panic("sublattice: ghost width exceeds the periodic box")
		}
	}
	if cfg.TStop <= 0 {
		panic("sublattice: non-positive t_stop")
	}
}

// vsys is one locally owned vacancy system.
type vsys struct {
	center lattice.Vec // raw == canonical (local region is canonical)
	vet    encoding.VET
	rates  [8]float64
	total  float64
	filled bool
	dirty  bool
}

type rankState struct {
	comm  *mpi.Comm
	cfg   Config
	tb    *encoding.Tables
	model kmc.Model
	rnd   *rng.Stream

	global *lattice.Box // geometry only (canonical indexing/wrapping)
	dom    *lattice.Domain

	systems []*vsys
	slotOf  map[int]int // canonical global index → slot

	changes []SiteChange
	stats   RankStats
	specVet encoding.VET // speculation scratch, lazily allocated

	// Telemetry handles (nil-safe no-ops when uninstrumented). All
	// ranks share the same nodes; the atomics make concurrent
	// accumulation safe.
	hopCtr     *telemetry.Counter
	sectorPh   *telemetry.Phase
	exchangePh *telemetry.Phase
}

func newRank(c *mpi.Comm, box *lattice.Box, cfg Config, model kmc.Model) *rankState {
	tb := model.Tables()
	rank := c.Rank()
	px := rank % cfg.PX
	py := (rank / cfg.PX) % cfg.PY
	pz := rank / (cfg.PX * cfg.PY)
	sx, sy, sz := 2*box.Nx/cfg.PX, 2*box.Ny/cfg.PY, 2*box.Nz/cfg.PZ
	origin := lattice.Vec{X: px * sx, Y: py * sy, Z: pz * sz}
	dom := lattice.NewDomain(origin, lattice.Vec{X: sx, Y: sy, Z: sz}, tb.MaxExtent, box.A)

	r := &rankState{
		comm:   c,
		cfg:    cfg,
		tb:     tb,
		model:  model,
		rnd:    rng.New(cfg.Seed).Split(uint64(rank)),
		global: lattice.NewBox(box.Nx, box.Ny, box.Nz, box.A), // geometry helper
		dom:    dom,
		slotOf: make(map[int]int),
	}
	if set := cfg.Telemetry; set != nil {
		seg := set.Trace().PhaseAt(telemetry.PhaseRun, telemetry.PhaseSegment)
		r.hopCtr = set.Reg().Counter(telemetry.MetricStepTotal,
			"Executed KMC hops (serial engine steps plus parallel rank hops).")
		r.sectorPh = seg.Child(telemetry.PhaseSector)
		r.exchangePh = seg.Child(telemetry.PhaseExchange)
	}
	// Scatter: local + ghost contents from the global box.
	dom.ForEachLocal(func(v lattice.Vec, idx int) {
		dom.Types()[idx] = box.Get(v)
		if box.Get(v) == lattice.Vacancy {
			r.addSystem(v)
		}
	})
	dom.ForEachGhost(func(v lattice.Vec, idx int) {
		dom.Types()[idx] = box.Get(v)
	})
	return r
}

func (r *rankState) addSystem(center lattice.Vec) {
	r.systems = append(r.systems, &vsys{center: center, vet: r.tb.NewVET(), dirty: true})
	r.slotOf[r.global.Index(center)] = len(r.systems) - 1
}

func (r *rankState) removeSystem(slot int) {
	last := len(r.systems) - 1
	delete(r.slotOf, r.global.Index(r.systems[slot].center))
	if slot != last {
		r.systems[slot] = r.systems[last]
		r.slotOf[r.global.Index(r.systems[slot].center)] = slot
	}
	r.systems = r.systems[:last]
}

// setAll updates every periodic image of the canonical site within the
// extended region (an undivided axis can hold two images of one site).
func (r *rankState) setAll(canon lattice.Vec, s lattice.Species) {
	period := lattice.Vec{X: 2 * r.global.Nx, Y: 2 * r.global.Ny, Z: 2 * r.global.Nz}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				v := lattice.Vec{X: canon.X + dx*period.X, Y: canon.Y + dy*period.Y, Z: canon.Z + dz*period.Z}
				if r.dom.Contains(v) {
					r.dom.Set(v, s)
				}
			}
		}
	}
}

// patchSystems updates cached VETs that cover the changed canonical site,
// mirroring the serial engine's vacancy-cache invalidation. skipSlot
// excludes the hopper (refilled instead).
func (r *rankState) patchSystems(canon lattice.Vec, s lattice.Species, skipSlot int) {
	for _, c := range r.tb.CET {
		centre := r.global.Wrap(canon.Add(c))
		slot, ok := r.slotOf[r.global.Index(centre)]
		if !ok || slot == skipSlot {
			continue
		}
		sys := r.systems[slot]
		if !sys.filled {
			sys.dirty = true
			continue
		}
		idx, found := r.tb.IndexOf(lattice.Vec{X: -c.X, Y: -c.Y, Z: -c.Z})
		if !found {
			panic("sublattice: CET not symmetric")
		}
		sys.vet[idx] = s
		sys.dirty = true
	}
}

// sectorOf returns the 2×2×2 sector octant (0–7) of a local-region site.
func (r *rankState) sectorOf(v lattice.Vec) int {
	rel := v.Sub(r.dom.Origin)
	s := 0
	if 2*rel.X >= r.dom.Size.X {
		s |= 1
	}
	if 2*rel.Y >= r.dom.Size.Y {
		s |= 2
	}
	if 2*rel.Z >= r.dom.Size.Z {
		s |= 4
	}
	return s
}

func (r *rankState) refresh(slot int) {
	sys := r.systems[slot]
	if !sys.filled {
		r.tb.FillVET(sys.vet, sys.center, r.dom.Get)
		sys.filled = true
		r.stats.Refills++
	}
	initial, final, valid := r.model.HopEnergies(sys.vet)
	sys.rates, sys.total = kmc.Rates(sys.vet, r.tb, initial, final, valid, r.cfg.Temperature)
	sys.dirty = false
	if r.cfg.Speculate > 0 && r.cfg.Prefetcher != nil {
		r.speculate(slot)
	}
}

// speculate hands the post-hop environments of the system's most
// probable hops to the Prefetcher. Only hops whose target stays inside
// the rank's interior are speculated: the environment around such a
// target is fully resident (local plus ghost region), so it can be
// filled without touching any other rank. Pure read-side work — no
// randomness drawn, no state changed — so the trajectory is
// bit-identical with speculation on or off.
func (r *rankState) speculate(slot int) {
	sys := r.systems[slot]
	if sys.total <= 0 {
		return
	}
	// Strictly-greater insertion sort: ties keep ascending direction
	// order, making the prediction sequence deterministic.
	var order [8]int
	for i := range order {
		order[i] = i
	}
	for i := 1; i < 8; i++ {
		for j := i; j > 0 && sys.rates[order[j]] > sys.rates[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	top := r.cfg.Speculate
	if top > 8 {
		top = 8
	}
	for i := 0; i < top; i++ {
		k := order[i]
		if sys.rates[k] <= 0 {
			break
		}
		from := sys.center
		toRaw := from.Add(lattice.NN1[k])
		if !r.dom.IsLocal(toRaw) {
			continue
		}
		mover := sys.vet[r.tb.NN1Index[k]]
		idxFrom := r.global.Index(from)
		idxTo := r.global.Index(toRaw)
		if r.specVet == nil {
			r.specVet = r.tb.NewVET()
		}
		// Overlay on canonical indices so every periodic image of the
		// two changed sites (an undivided axis holds several) reads its
		// post-hop occupancy.
		get := func(v lattice.Vec) lattice.Species {
			switch r.global.Index(v) {
			case idxFrom:
				return mover
			case idxTo:
				return lattice.Vacancy
			}
			return r.dom.Get(v)
		}
		r.tb.FillVET(r.specVet, toRaw, get)
		r.cfg.Prefetcher.Prefetch(r.specVet)
		r.stats.Speculations++
	}
}

// runSector evolves the active sector for the window (seconds).
func (r *rankState) runSector(sector int, window float64) {
	var clock float64
	for {
		// Active systems: local vacancies currently in this sector.
		var active []int
		var total float64
		for slot, sys := range r.systems {
			if r.sectorOf(sys.center) != sector {
				continue
			}
			if sys.dirty {
				r.refresh(slot)
			}
			if sys.total > 0 {
				active = append(active, slot)
				total += sys.total
			}
		}
		if total <= 0 {
			return
		}
		dt := r.rnd.ExpDeltaT(total)
		clock += dt
		if clock > window {
			r.stats.Discarded++
			return
		}
		// Select vacancy then direction.
		target := r.rnd.Float64() * total
		slot := active[len(active)-1]
		var acc float64
		for _, s := range active {
			acc += r.systems[s].total
			if target < acc {
				slot = s
				break
			}
		}
		sys := r.systems[slot]
		k := 7
		dirTarget := r.rnd.Float64() * sys.total
		acc = 0
		for i := 0; i < 8; i++ {
			acc += sys.rates[i]
			if dirTarget < acc {
				k = i
				break
			}
		}
		r.executeHop(slot, k)
	}
}

func (r *rankState) executeHop(slot int, k int) {
	sys := r.systems[slot]
	from := sys.center
	toRaw := from.Add(lattice.NN1[k])
	toCanon := r.global.Wrap(toRaw)
	mover := r.dom.Get(toRaw)
	if !mover.IsAtom() {
		panic("sublattice: hop into non-atom")
	}
	r.setAll(from, mover)
	r.setAll(toCanon, lattice.Vacancy)
	r.changes = append(r.changes,
		SiteChange{Site: from, New: mover},
		SiteChange{Site: toCanon, New: lattice.Vacancy})
	r.stats.Sent += 2
	r.stats.Hops++
	r.hopCtr.Inc()

	if r.dom.IsLocal(toCanon) {
		// Stays ours: move the system.
		delete(r.slotOf, r.global.Index(from))
		r.slotOf[r.global.Index(toCanon)] = slot
		sys.center = toCanon
		sys.filled = false
		sys.dirty = true
		r.patchSystems(from, mover, slot)
		r.patchSystems(toCanon, lattice.Vacancy, slot)
	} else {
		// Emigrated into a neighbour's territory: drop local ownership;
		// the neighbour adopts it when the change arrives.
		r.patchSystems(from, mover, slot)
		r.patchSystems(toCanon, lattice.Vacancy, slot)
		r.removeSystem(slot)
	}
}

// exchange broadcasts accumulated changes and applies everyone else's.
// With an ExchangeTimeout configured it returns an error (naming the
// stalled ranks) instead of blocking forever on a dead peer.
func (r *rankState) exchange() error {
	payload := append([]SiteChange(nil), r.changes...)
	var all []any
	if r.cfg.ExchangeTimeout > 0 {
		var err error
		all, err = r.comm.AllGatherTimeout(payload, r.cfg.ExchangeTimeout)
		if err != nil {
			return err
		}
	} else {
		all = r.comm.AllGather(payload)
	}
	r.changes = r.changes[:0]
	for from, payload := range all {
		if from == r.comm.Rank() {
			continue
		}
		for _, ch := range payload.([]SiteChange) {
			r.apply(ch)
		}
	}
	return nil
}

func (r *rankState) apply(ch SiteChange) {
	canon := ch.Site
	// Does any image fall in our extended region?
	inRegion := false
	period := lattice.Vec{X: 2 * r.global.Nx, Y: 2 * r.global.Ny, Z: 2 * r.global.Nz}
	for dx := -1; dx <= 1 && !inRegion; dx++ {
		for dy := -1; dy <= 1 && !inRegion; dy++ {
			for dz := -1; dz <= 1 && !inRegion; dz++ {
				v := lattice.Vec{X: canon.X + dx*period.X, Y: canon.Y + dy*period.Y, Z: canon.Z + dz*period.Z}
				if r.dom.Contains(v) {
					inRegion = true
				}
			}
		}
	}
	if !inRegion {
		return
	}
	if r.dom.IsLocal(canon) {
		old := r.dom.Get(canon)
		if old == ch.New {
			return
		}
		if old == lattice.Vacancy && ch.New != lattice.Vacancy {
			// A vacancy we owned was consumed remotely — cannot happen
			// under the sector discipline for owned interiors, but a
			// just-adopted vacancy may be re-announced; drop ownership.
			if slot, ok := r.slotOf[r.global.Index(canon)]; ok {
				r.removeSystem(slot)
			}
		}
		r.setAll(canon, ch.New)
		if ch.New == lattice.Vacancy {
			r.addSystem(canon)
		}
	} else {
		r.setAll(canon, ch.New)
	}
	r.patchSystems(canon, ch.New, -1)
}

// run advances the simulation by duration seconds. It aborts cleanly
// (diagnostics, no hang) if a sector exchange times out.
func (r *rankState) run(duration float64) error {
	tstop := r.cfg.TStop
	remaining := duration
	for remaining > 1e-18*duration && remaining > 0 {
		window := tstop
		if remaining < window {
			window = remaining
		}
		for sector := 0; sector < 8; sector++ {
			sw := r.sectorPh.Start()
			r.runSector(sector, window)
			sw.Stop()
			sw = r.exchangePh.Start()
			err := r.exchange()
			sw.Stop()
			if err != nil {
				return fmt.Errorf("sector %d exchange: %w", sector, err)
			}
		}
		remaining -= window
	}
	return nil
}

// SuggestTStop returns a synchronisation quantum targeting the given
// number of expected hops per vacancy per sector window. The paper's
// strict default (2×10⁻⁸ s at 573 K) corresponds to roughly two hops per
// vacancy per window; Sec. 4.4 notes that practical runs can raise
// t_stop "to some larger values to significantly reduce communication" —
// at the cost of a larger semirigorous approximation error. hopRate is
// the per-vacancy total propensity (≈8·Γ_hop in dilute systems).
func SuggestTStop(hopRate float64, hopsPerWindow float64) float64 {
	if hopRate <= 0 || hopsPerWindow <= 0 {
		panic("sublattice: non-positive rate or target")
	}
	return hopsPerWindow / hopRate
}
