// Package fusion implements the NNP inference operators of Secs. 3.4–3.5
// on the simulated Sunway core group: the optimisation ladder of Fig. 10,
// from the naive per-layer Conv2D to the big-fusion operator of
// Algorithm 1. All variants compute numerically identical results (a 1×1
// convolution over atoms is exactly a matrix multiplication); they differ
// in how much main-memory traffic, scalar work and DMA latency they
// incur, which the sw.CoreGroup counters capture and the roofline model
// converts to time.
package fusion

import (
	"fmt"

	"tensorkmc/internal/nnp"
	"tensorkmc/internal/sw"
)

// Variant labels one rung of the Fig. 10 optimisation ladder.
type Variant int

const (
	// Base is the original operator: naive Conv2D on CPEs, scalar code
	// with per-element index arithmetic, separate bias and ReLU passes.
	Base Variant = iota
	// Matmul converts the 1×1 convolution to a matrix multiplication
	// (Fig. 6a) — same traffic, less index overhead, still scalar.
	Matmul
	// SIMD vectorises the matrix multiplication.
	SIMD
	// Fused merges (MatMul, Bias, ReLU) into one kernel per layer
	// (Fig. 6b): bias and ReLU happen in registers, eliminating their
	// memory passes.
	Fused
	// BigFusion merges all layers into a single kernel (Fig. 6c–f,
	// Algorithm 1): only the first input and last output touch main
	// memory; weights are distributed over CPE columns and shared by
	// RMA row broadcast; DMA double-buffering overlaps memory with
	// compute.
	BigFusion
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Base:
		return "conv2d(base)"
	case Matmul:
		return "matmul"
	case SIMD:
		return "matmul+simd"
	case Fused:
		return "fused(conv,bias,relu)"
	case BigFusion:
		return "big-fusion"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists the ladder in order.
var Variants = []Variant{Base, Matmul, SIMD, Fused, BigFusion}

// convIndexOverhead is the extra scalar work of per-element convolution
// indexing relative to a plain matmul (the paper's conv→matmul rung
// yields 1.23×).
const convIndexOverhead = 1.23

// Result bundles a run's output and its modelled cost.
type Result struct {
	// Out is the m×1 network output, bit-identical across variants and
	// worker counts (the contract the wide/streaming kernels must keep).
	Out nnp.Matrix
	// Ct are the modelled hardware counters of the run (flops, DMA
	// bytes, LDM traffic) and Seconds the roofline-modelled time they
	// imply on the target core group.
	Ct      sw.Counters
	Seconds float64
	// PeakLDM is the high-water scratchpad usage of the most loaded
	// CPE (big-fusion only).
	PeakLDM int
}

// Run executes the network on a batch of m samples with the given
// variant on a fresh simulated core group and returns the output plus
// modelled cost. The input x is (m × inputDim).
func Run(v Variant, net *nnp.Network, x nnp.Matrix, arch sw.Arch) Result {
	cg := sw.NewCoreGroup(arch)
	var out nnp.Matrix
	overlap := false
	switch v {
	case Base, Matmul, SIMD:
		out = runLayered(v, net, x, cg)
	case Fused:
		out = runFused(net, x, cg)
	case BigFusion:
		out = runBigFusion(net, x, cg)
		overlap = true
	default:
		panic("fusion: unknown variant")
	}
	res := Result{Out: out, Ct: cg.Ct, Seconds: cg.Ct.Time(arch, overlap)}
	for _, l := range cg.LDMs {
		if l.Peak() > res.PeakLDM {
			res.PeakLDM = l.Peak()
		}
	}
	return res
}

// dmaTransfer counts a bulk transfer staged through DMA blocks.
func dmaTransfer(cg *sw.CoreGroup, bytes int) {
	block := cg.Arch.DMABlock
	for bytes > 0 {
		n := bytes
		if n > block {
			n = block
		}
		cg.DMAGet(0, n)
		bytes -= n
	}
}

// runLayered implements the three unfused rungs: per layer a matmul pass,
// a bias pass and a ReLU pass, each streaming through main memory.
func runLayered(v Variant, net *nnp.Network, x nnp.Matrix, cg *sw.CoreGroup) nnp.Matrix {
	m := x.Rows
	cur := x
	for _, layer := range net.Layers {
		in, outW := layer.W.Rows, layer.W.Cols
		// Matmul pass: read input and weights, write output.
		dmaTransfer(cg, m*in*4)
		dmaTransfer(cg, (in*outW+outW)*4)
		dmaTransfer(cg, m*outW*4)
		flops := float64(2 * m * in * outW)
		switch v {
		case Base:
			cg.Ct.ScalarFlops += flops * convIndexOverhead
		case Matmul:
			cg.Ct.ScalarFlops += flops
		case SIMD:
			cg.Ct.VectorFlops += flops
		}
		next := nnp.MatMul(cur, layer.W)
		// Bias pass: read + write the activation map.
		dmaTransfer(cg, 2*m*outW*4)
		// ReLU pass: read + write again.
		dmaTransfer(cg, 2*m*outW*4)
		passFlops := float64(2 * m * outW)
		if v == SIMD {
			cg.Ct.VectorFlops += passFlops
		} else {
			cg.Ct.ScalarFlops += passFlops
		}
		if layer.Relu {
			nnp.AddBiasRelu(next, layer.B)
		} else {
			nnp.AddBias(next, layer.B)
		}
		cur = next
	}
	return cur
}

// runFused implements the per-layer fused kernel: one read of the input,
// one write of the output, bias and ReLU in registers.
func runFused(net *nnp.Network, x nnp.Matrix, cg *sw.CoreGroup) nnp.Matrix {
	m := x.Rows
	cur := x
	for _, layer := range net.Layers {
		in, outW := layer.W.Rows, layer.W.Cols
		dmaTransfer(cg, m*in*4)
		dmaTransfer(cg, (in*outW+outW)*4)
		dmaTransfer(cg, m*outW*4)
		cg.Ct.VectorFlops += float64(2*m*in*outW) + float64(2*m*outW)
		next := nnp.MatMul(cur, layer.W)
		if layer.Relu {
			nnp.AddBiasRelu(next, layer.B)
		} else {
			nnp.AddBias(next, layer.B)
		}
		cur = next
	}
	return cur
}

// runBigFusion implements Algorithm 1 functionally: the batch is divided
// into row blocks assigned to CPEs round-robin; each CPE carries its
// block through all layers entirely in LDM. Each CPE column owns one
// layer's parameters and broadcasts them along its row on demand (RMA).
// Main memory is touched exactly twice per block: the first-layer input
// and the last-layer output.
func runBigFusion(net *nnp.Network, x nnp.Matrix, cg *sw.CoreGroup) nnp.Matrix {
	if len(net.Layers) > cg.Arch.CPECols {
		panic(fmt.Sprintf("fusion: %d layers exceed the %d CPE columns (paper supports up to eight)",
			len(net.Layers), cg.Arch.CPECols))
	}
	m := x.Rows
	nCPE := cg.Arch.NumCPEs()
	const mBlock = 32 // rows per CPE per iteration (the paper's m_block)

	maxW := 0
	totalParamBytes := 0
	for _, l := range net.Layers {
		if l.W.Cols > maxW {
			maxW = l.W.Cols
		}
		if l.W.Rows > maxW {
			maxW = l.W.Rows
		}
		totalParamBytes += (len(l.W.Data) + len(l.B)) * 4
	}

	// Model distribution: each column's CPEs hold 1/CPERows of one
	// layer's parameters, loaded once by DMA.
	perCPEShare := (totalParamBytes/len(net.Layers) + cg.Arch.CPERows - 1) / cg.Arch.CPERows
	for c := 0; c < nCPE; c++ {
		cg.LDMs[c].Alloc(perCPEShare)
	}
	dmaTransfer(cg, totalParamBytes)

	// Working set per CPE: double-buffered state (Fig. 6e) plus one
	// staged full layer (gathered by RMA, Fig. 6f).
	stateBuf := 2 * mBlock * maxW * 4
	layerBuf := 0
	for _, l := range net.Layers {
		if b := (len(l.W.Data) + len(l.B)) * 4; b > layerBuf {
			layerBuf = b
		}
	}
	for c := 0; c < nCPE; c++ {
		cg.LDMs[c].Alloc(stateBuf + layerBuf)
	}

	out := nnp.NewMatrix(m, net.OutputDim())
	inDim := net.InputDim()
	iterations := 0
	for start := 0; start < m; start += nCPE * mBlock {
		iterations++
		for cpe := 0; cpe < nCPE; cpe++ {
			lo := start + cpe*mBlock
			if lo >= m {
				break
			}
			hi := lo + mBlock
			if hi > m {
				hi = m
			}
			rows := hi - lo
			// Fetch this block's input (the only input read).
			cg.DMAGet(cpe, rows*inDim*4)
			block := nnp.Matrix{Rows: rows, Cols: inDim, Data: x.Data[lo*inDim : hi*inDim]}
			cur := block
			for _, layer := range net.Layers {
				cur = nnp.MatMul(cur, layer.W)
				if layer.Relu {
					nnp.AddBiasRelu(cur, layer.B)
				} else {
					nnp.AddBias(cur, layer.B)
				}
				cg.Ct.VectorFlops += float64(2*rows*layer.W.Rows*layer.W.Cols) + float64(2*rows*layer.W.Cols)
			}
			// Put back the final output (the only output write).
			cg.DMAPut(cpe, rows*net.OutputDim()*4)
			for r := 0; r < rows; r++ {
				copy(out.Row(lo+r), cur.Row(r))
			}
		}
		// Per iteration, each layer's owning column broadcasts its
		// parameters along the rows (Fig. 6f).
		for _, l := range net.Layers {
			cg.RMARowBroadcast((len(l.W.Data) + len(l.B)) * 4)
		}
	}
	// Release working buffers (parameters stay resident).
	for c := 0; c < nCPE; c++ {
		cg.LDMs[c].Free(stateBuf + layerBuf)
	}
	return out
}

// RunBigFusionF32 executes the big-fusion operator in single precision —
// the arithmetic the real SW26010-pro uses (the paper quotes 76.64% of
// *single-precision* peak and 4-byte elements throughout Fig. 9). The
// result differs from the float64 path only by rounding; the test bounds
// the deviation at the level the KMC rate code tolerates.
func RunBigFusionF32(net *nnp.Network, x nnp.Matrix, arch sw.Arch) Result {
	cg := sw.NewCoreGroup(arch)
	q := net.Quantize()
	m := x.Rows
	inDim := net.InputDim()
	const mBlock = 32
	nCPE := cg.Arch.NumCPEs()

	totalParamBytes := 0
	maxW := 0
	for _, l := range net.Layers {
		totalParamBytes += (len(l.W.Data) + len(l.B)) * 4
		if l.W.Cols > maxW {
			maxW = l.W.Cols
		}
		if l.W.Rows > maxW {
			maxW = l.W.Rows
		}
	}
	perCPEShare := (totalParamBytes/len(net.Layers) + cg.Arch.CPERows - 1) / cg.Arch.CPERows
	stateBuf := 2 * mBlock * maxW * 4
	layerBuf := 0
	for _, l := range net.Layers {
		if b := (len(l.W.Data) + len(l.B)) * 4; b > layerBuf {
			layerBuf = b
		}
	}
	for c := 0; c < nCPE; c++ {
		cg.LDMs[c].Alloc(perCPEShare + stateBuf + layerBuf)
	}
	for b := totalParamBytes; b > 0; b -= cg.Arch.DMABlock {
		cg.DMAGet(0, min(b, cg.Arch.DMABlock))
	}

	out := nnp.NewMatrix(m, net.OutputDim())
	xf := nnp.ToF32(x)
	for start := 0; start < m; start += nCPE * mBlock {
		for cpe := 0; cpe < nCPE; cpe++ {
			lo := start + cpe*mBlock
			if lo >= m {
				break
			}
			hi := lo + mBlock
			if hi > m {
				hi = m
			}
			rows := hi - lo
			cg.DMAGet(cpe, rows*inDim*4)
			block := nnp.Matrix32{Rows: rows, Cols: inDim, Data: xf.Data[lo*inDim : hi*inDim]}
			cur := q.Forward(block)
			var flops float64
			for _, l := range net.Layers {
				flops += float64(2*rows*l.W.Rows*l.W.Cols) + float64(2*rows*l.W.Cols)
			}
			cg.Ct.VectorFlops += flops
			cg.DMAPut(cpe, rows*net.OutputDim()*4)
			for r := 0; r < rows; r++ {
				for j := 0; j < net.OutputDim(); j++ {
					out.Set(lo+r, j, float64(cur.Row(r)[j]))
				}
			}
		}
		for _, l := range net.Layers {
			cg.RMARowBroadcast((len(l.W.Data) + len(l.B)) * 4)
		}
	}
	res := Result{Out: out, Ct: cg.Ct, Seconds: cg.Ct.Time(arch, true)}
	for _, l := range cg.LDMs {
		if l.Peak() > res.PeakLDM {
			res.PeakLDM = l.Peak()
		}
	}
	return res
}
