package evalserve

import (
	"bytes"
	"container/list"
	"sync"

	"tensorkmc/internal/encoding"
	"tensorkmc/internal/telemetry"
)

// CacheStats is one shard's counter snapshot.
type CacheStats struct {
	Hits       int64 // lookups answered from the shard
	Misses     int64 // lookups that fell through to evaluation
	Evictions  int64 // entries displaced by the LRU policy
	Collisions int64 // hash matches vetoed by the full-environment compare
	// SpecWarmHits counts demand lookups answered by an entry a
	// speculative prefetch inserted — the realised value of speculation.
	// Each speculative entry is counted at most once (its flag clears on
	// first demand use).
	SpecWarmHits int64
	Entries      int // current resident entries
}

// add accumulates o into s (for aggregate reporting).
func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Collisions += o.Collisions
	s.SpecWarmHits += o.SpecWarmHits
	s.Entries += o.Entries
}

// entry is one cached vacancy system: the full canonical environment (the
// collision check) and the exact f64 evaluation outputs. spec marks an
// entry inserted by a speculative prefetch that no demand request has
// used yet.
type entry struct {
	hash uint64
	env  []byte
	res  Result
	spec bool
	elem *list.Element
}

// cacheShard is an independently locked LRU over one slice of the hash
// space. Buckets are per-hash entry lists so genuine 64-bit collisions
// coexist instead of clobbering each other.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	buckets map[uint64][]*entry
	lru     *list.List // front = most recent; values are *entry
	stats   CacheStats
	journal *telemetry.Journal // nil when telemetry is off
}

// evictionSampleEvery rate-limits eviction flight-recorder events: cache
// churn under a tight capacity can evict on every insert, and recording
// each one would flush the interesting failure-path events out of the
// bounded ring. One event per this many evictions per shard keeps the
// churn visible without drowning the tail.
const evictionSampleEvery = 256

// Cache is the sharded, content-addressed vacancy-system cache: the
// paper's vacancy cache (Sec. 3.2) generalized across vacancies and
// across engines. Keys are canonical VET content-addresses
// (encoding.Fingerprint); every hit re-verifies the full environment so a
// hash collision can never substitute a wrong energy (the bit-identity
// contract).
type Cache struct {
	shards []*cacheShard
	mask   uint64
}

// NewCache builds a cache holding up to capacity entries total, split
// over the given number of shards (rounded up to a power of two).
func NewCache(capacity, shards int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	c := &Cache{shards: make([]*cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:     perShard,
			buckets: make(map[uint64][]*entry),
			lru:     list.New(),
		}
	}
	return c
}

// shardFor routes a fingerprint to its shard. The top bits select the
// shard so the bucket map keys (full hashes) stay well distributed
// within each shard.
func (c *Cache) shardFor(hash uint64) *cacheShard {
	return c.shards[(hash>>48)&c.mask]
}

// Get returns the cached result for the vacancy system, verifying the
// stored environment byte-for-byte before trusting the hash. It is a
// demand lookup: a hit on a speculative entry counts as a SpecWarmHit
// and promotes the entry to a normal one.
func (c *Cache) Get(hash uint64, vet encoding.VET) (Result, bool) {
	return c.lookup(hash, vet, true, true)
}

// peek is Get without hit/miss accounting — the server's second-chance
// check uses it so one client request never counts as two lookups.
// Collisions are still counted (they are a property of the store, not of
// request traffic). consumeSpec tells the lookup whether it serves a
// demand request (and so realises speculative value) or a speculative
// one.
func (c *Cache) peek(hash uint64, vet encoding.VET, consumeSpec bool) (Result, bool) {
	return c.lookup(hash, vet, false, consumeSpec)
}

// Contains reports whether the system is resident, with no side effects:
// no counters, no LRU touch, no speculative-flag consumption. Prefetch
// uses it so speculative probes never perturb demand-driven state.
func (c *Cache) Contains(hash uint64, vet encoding.VET) bool {
	s := c.shardFor(hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.buckets[hash] {
		if encoding.MatchEnv(e.env, vet) {
			return true
		}
	}
	return false
}

func (c *Cache) lookup(hash uint64, vet encoding.VET, record, consumeSpec bool) (Result, bool) {
	s := c.shardFor(hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.buckets[hash] {
		if encoding.MatchEnv(e.env, vet) {
			s.lru.MoveToFront(e.elem)
			if record {
				s.stats.Hits++
			}
			if e.spec && consumeSpec {
				s.stats.SpecWarmHits++
				e.spec = false
			}
			return e.res, true
		}
		s.stats.Collisions++
	}
	if record {
		s.stats.Misses++
	}
	return Result{}, false
}

// Put inserts an evaluated system. env must be the canonical encoding of
// the evaluated VET; res the exact f64 outputs. Re-inserting an existing
// environment refreshes its recency and overwrites the entry.
func (c *Cache) Put(hash uint64, env []byte, res Result) {
	c.put(hash, env, res, false)
}

// PutSpeculative inserts a speculatively evaluated system, flagged so the
// first demand hit on it is counted as realised speculation value.
// Re-inserting an environment a demand evaluation already stored leaves
// it a normal entry.
func (c *Cache) PutSpeculative(hash uint64, env []byte, res Result) {
	c.put(hash, env, res, true)
}

func (c *Cache) put(hash uint64, env []byte, res Result, spec bool) {
	s := c.shardFor(hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.buckets[hash] {
		if bytes.Equal(e.env, env) {
			e.res = res
			e.spec = e.spec && spec
			s.lru.MoveToFront(e.elem)
			return
		}
	}
	e := &entry{hash: hash, env: env, res: res, spec: spec}
	e.elem = s.lru.PushFront(e)
	s.buckets[hash] = append(s.buckets[hash], e)
	for s.lru.Len() > s.cap {
		s.evictOldest()
	}
}

// evictOldest drops the least-recently-used entry (shard lock held).
func (s *cacheShard) evictOldest() {
	back := s.lru.Back()
	if back == nil {
		return
	}
	victim := back.Value.(*entry)
	s.lru.Remove(back)
	bucket := s.buckets[victim.hash]
	for i, e := range bucket {
		if e == victim {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(s.buckets, victim.hash)
	} else {
		s.buckets[victim.hash] = bucket
	}
	s.stats.Evictions++
	if s.stats.Evictions%evictionSampleEvery == 1 {
		// Journal recording takes only the journal's own lock, never a
		// shard lock, so holding s.mu here cannot deadlock.
		s.journal.Record("cache-evict",
			"shard evicted entry %x (%d evictions so far, %d resident)",
			victim.hash, s.stats.Evictions, s.lru.Len())
	}
}

// setJournal hands every shard the flight recorder for sampled eviction
// events. Call before the cache is shared across goroutines.
func (c *Cache) setJournal(j *telemetry.Journal) {
	for _, s := range c.shards {
		s.journal = j
	}
}

// Stats snapshots every shard's counters, in shard order.
//
// Consistency model: each shard's snapshot is taken under that shard's
// lock, so every CacheStats element is internally consistent (its Hits,
// Misses, Evictions, Collisions and Entries all come from one instant).
// Shards are visited one after another, though, so the cross-shard
// aggregate is NOT a point-in-time cut of the whole cache — lookups
// landing on shard 7 while shard 0 is being read appear in one snapshot
// and not the other. Totals are therefore approximate while traffic is
// in flight and exact once the server has quiesced (e.g. after Close).
// The telemetry registry's cache metrics are function-backed reads of
// these same shard counters, so /metrics inherits — and can never
// disagree with — this model.
func (c *Cache) Stats() []CacheStats {
	out := make([]CacheStats, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		st := s.stats
		st.Entries = s.lru.Len()
		s.mu.Unlock()
		out[i] = st
	}
	return out
}
