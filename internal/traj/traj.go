// Package traj is the event-sourced trajectory subsystem: every hop,
// clipped interval, parallel segment, state snapshot and supervised
// recovery of a run is an append-only record in a CRC-framed,
// delta-compressed TKMCTRJ1 log. The log — not the final checkpoint —
// is the product: it supports time-travel replay (reconstruct the exact
// lattice/RNG/clock state at any recorded hop), branching ensembles
// (fork replicas from any snapshot) and compact long-trajectory storage
// (a serial hop costs ~11 bytes: slot varint + direction folded into
// the opcode + the raw Δt; positions are derived, never stored).
//
// The file format reuses the WAL framing discipline of internal/ctl:
// an 8-byte magic followed by frames of
//
//	uint32 LE payload length | payload | uint32 LE CRC-32 (IEEE) of payload
//
// A frame's payload holds one or more records. A torn tail (short or
// CRC-failing final frame, e.g. from a crash mid-write) is silently
// truncated on open, exactly like the control-plane WAL; corruption
// *inside* a CRC-valid frame is a hard error — it means the encoder
// misbehaved, and the log refuses to extend a lie.
//
// Recording is trajectory-invisible: the recorder only observes events
// the engines already executed, never touches an RNG stream, and
// checkpoints are byte-identical with recording on or off (proven in
// internal/core tests).
package traj

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"tensorkmc/internal/telemetry"
)

// Magic identifies a TKMCTRJ1 trajectory log.
const Magic = "TKMCTRJ1"

const (
	headerLen = 8 // len(Magic)

	// maxFramePayload bounds a single frame; larger length prefixes are
	// treated as a torn tail by the reader and are never produced by the
	// recorder (it flushes well below this).
	maxFramePayload = 4 << 20
	// flushThreshold is the buffered-record size at which the recorder
	// emits an intermediate (unsynced) frame.
	flushThreshold = 64 << 10
	// maxStringLen bounds snapshot names and recovery details.
	maxStringLen = 4096
	// maxSlot bounds the vacancy slot index in hop records; real runs
	// have at most a few thousand vacancies.
	maxSlot = 1 << 24
)

// Record opcodes. Hop records fold the 8 bcc NN1 directions into the
// opcode's low 3 bits.
const (
	opBegin    = 0x01 // mode u8, hops uvarint, time f64
	opHopBase  = 0x10 // 0x10..0x17: slot uvarint, Δt f64
	opClip     = 0x20 // limit f64 (interval boundary; consumed 3 draws)
	opSegment  = 0x21 // seg uvarint, duration f64, time f64, hops uvarint
	opSnapshot = 0x22 // hops uvarint, time f64, name (uvarint len + bytes)
	opRecovery = 0x23 // hops uvarint, time f64, detail (uvarint len + bytes)
)

// Mode distinguishes serial (per-hop) from parallel (per-segment) logs;
// the two record different grains and replay differently.
type Mode uint8

const (
	// ModeSerial logs every hop and clip of the serial engine.
	ModeSerial Mode = 0
	// ModeParallel logs sublattice segment boundaries (per-hop events
	// happen concurrently across ranks and are not globally ordered).
	ModeParallel Mode = 1
)

// String names the mode for errors and logs.
func (m Mode) String() string {
	switch m {
	case ModeSerial:
		return "serial"
	case ModeParallel:
		return "parallel"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Stats summarises a recorder's activity for benchmarks and telemetry.
type Stats struct {
	// Events counts hop, clip and segment records appended by this
	// recorder since Open (snapshots and recoveries excluded).
	Events int64
	// Bytes is the durable size of the log file, frames plus header.
	Bytes int64
	// Snapshots counts snapshot records appended since Open.
	Snapshots int
}

// mark is a durable frame boundary: the file offset right after the
// frame and the bit-exact (hops, time) state the log encodes up to it.
// Rollback targets are located by exact (hops, time) match — hops alone
// is ambiguous because clipped intervals consume RNG draws without
// advancing the hop count.
type mark struct {
	off  int64
	hops int64
	time float64
}

// Recorder appends trajectory records to a TKMCTRJ1 log. It buffers
// records in memory and makes them durable on Commit (fsync), which the
// core run loop calls before every checkpoint write so the log is never
// behind a durable checkpoint. It is not safe for concurrent use; the
// serial engine and the parallel sweep committer are single-goroutine.
type Recorder struct {
	f    *os.File
	path string
	mode Mode
	// every is the snapshot cadence in events; 0 means only the initial
	// snapshot.
	every int

	begun bool
	buf   []byte
	marks []mark
	// tail indexes marks at the current logical end of the log. Rollback
	// moves it backwards without touching the file; the pending truncate
	// happens on the next write, so a failed restore chain can still
	// roll back to a later mark.
	tail      int
	hops      int64
	time      float64
	sinceSnap int
	events    int64
	snaps     int
	journal   *telemetry.Journal
	err       error
}

// Open creates or resumes a trajectory log at path. An existing log is
// scanned (torn tails truncated, WAL-style), its frame boundaries
// indexed for rollback, and its mode checked against the requested one.
// snapshotEvery is the cadence for SnapshotDue in events; <= 0 means
// only the initial snapshot.
func Open(path string, mode Mode, snapshotEvery int) (*Recorder, error) {
	if mode != ModeSerial && mode != ModeParallel {
		return nil, fmt.Errorf("traj: invalid mode %d", mode)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("traj: opening log: %w", err)
	}
	r := &Recorder{f: f, path: path, mode: mode, every: snapshotEvery}
	if err := r.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// scan validates the header, indexes durable frames into marks, and
// truncates any torn tail. A short or missing header is a fresh log.
func (r *Recorder) scan() error {
	info, err := r.f.Stat()
	if err != nil {
		return fmt.Errorf("traj: stat log: %w", err)
	}
	if info.Size() < headerLen {
		// Fresh (or never-completed-header) log: stamp the magic.
		if err := r.f.Truncate(0); err != nil {
			return fmt.Errorf("traj: resetting log: %w", err)
		}
		if _, err := r.f.WriteAt([]byte(Magic), 0); err != nil {
			return fmt.Errorf("traj: writing log header: %w", err)
		}
		if _, err := r.f.Seek(headerLen, 0); err != nil {
			return err
		}
		r.marks = []mark{{off: headerLen}}
		return nil
	}
	data := make([]byte, info.Size())
	if _, err := r.f.ReadAt(data, 0); err != nil {
		return fmt.Errorf("traj: reading log: %w", err)
	}
	if string(data[:headerLen]) != Magic {
		return fmt.Errorf("traj: %s is not a TKMCTRJ1 trajectory log", r.path)
	}
	r.marks = []mark{{off: headerLen}}
	st := &scanState{}
	good := int64(headerLen)
	for {
		payload, n, ok := nextFrame(data[good:])
		if !ok {
			break
		}
		if err := parseRecords(payload, st, nil); err != nil {
			return fmt.Errorf("traj: %s: corrupt record in CRC-valid frame: %w", r.path, err)
		}
		good += n
		r.marks = append(r.marks, mark{off: good, hops: st.hops, time: st.time})
	}
	if st.seenBegin {
		if st.mode != r.mode {
			return fmt.Errorf("traj: %s is a %v log, requested %v", r.path, st.mode, r.mode)
		}
		r.begun = true
		r.hops = st.hops
		r.time = st.time
		r.marks[0] = mark{off: headerLen, hops: st.startHops, time: st.startTime}
	}
	if good != info.Size() {
		// Torn tail from a crash mid-write: drop it, WAL-style.
		if err := r.f.Truncate(good); err != nil {
			return fmt.Errorf("traj: truncating torn tail: %w", err)
		}
	}
	if _, err := r.f.Seek(good, 0); err != nil {
		return err
	}
	r.tail = len(r.marks) - 1
	return nil
}

// Mode returns the log's mode.
func (r *Recorder) Mode() Mode { return r.mode }

// Path returns the log file path.
func (r *Recorder) Path() string { return r.path }

// Begun reports whether the log already holds a begin record (durable
// or buffered) — i.e. whether a resuming run must Rollback rather than
// Begin.
func (r *Recorder) Begun() bool { return r.begun }

// SetJournal mirrors begin/snapshot/recovery records into the flight
// recorder so operators see trajectory structure in /events. Nil is
// fine (no-op); per-hop records are never journaled.
func (r *Recorder) SetJournal(j *telemetry.Journal) { r.journal = j }

// Begin opens the record stream at the run's starting state. It must be
// the first record of a fresh log and cannot be repeated.
func (r *Recorder) Begin(hops int64, time float64) error {
	if r.err != nil {
		return r.err
	}
	if r.begun {
		return fmt.Errorf("traj: log already begun")
	}
	if hops < 0 || !finite(time) || time < 0 {
		return fmt.Errorf("traj: invalid begin state hops=%d t=%v", hops, time)
	}
	r.buf = append(r.buf, opBegin, byte(r.mode))
	r.buf = binary.AppendUvarint(r.buf, uint64(hops))
	r.buf = appendF64(r.buf, time)
	r.begun = true
	r.hops = hops
	r.time = time
	r.marks[0] = mark{off: headerLen, hops: hops, time: time}
	r.journal.RecordSim("traj", time, "begin %v log at hop %d", r.mode, hops)
	return nil
}

// Hop appends one executed hop: the chosen vacancy slot, the NN1
// direction (0..7) and the residence-time increment. Positions are
// derivable and not stored. Errors are sticky and surface at Commit.
func (r *Recorder) Hop(slot, dir int, deltaT float64) {
	if r.err != nil {
		return
	}
	if !r.begun || slot < 0 || slot >= maxSlot || dir < 0 || dir > 7 || !finite(deltaT) || deltaT < 0 {
		r.err = fmt.Errorf("traj: invalid hop record slot=%d dir=%d dt=%v begun=%v", slot, dir, deltaT, r.begun)
		return
	}
	r.buf = append(r.buf, byte(opHopBase|dir))
	r.buf = binary.AppendUvarint(r.buf, uint64(slot))
	r.buf = appendF64(r.buf, deltaT)
	r.hops++
	r.time += deltaT
	r.events++
	r.sinceSnap++
	r.maybeFlush()
}

// Clip records an interval boundary: the serial engine drew a Δt that
// overshot the time limit, consumed its three draws, and pinned the
// clock to the limit. Replay must reproduce those draws, so clips are
// part of the trajectory.
func (r *Recorder) Clip(limit float64) {
	if r.err != nil {
		return
	}
	if !r.begun || !finite(limit) || limit < r.time {
		r.err = fmt.Errorf("traj: invalid clip limit=%v at t=%v begun=%v", limit, r.time, r.begun)
		return
	}
	r.buf = append(r.buf, opClip)
	r.buf = appendF64(r.buf, limit)
	r.time = limit
	r.events++
	r.maybeFlush()
}

// Segment records a completed parallel sweep: its segment index, the
// requested duration and the absolute (time, hops) state after it.
// Parallel runs are deterministic per segment (ranks reseed from
// Seed+segment), so the segment stream is the whole trajectory.
func (r *Recorder) Segment(seg uint64, duration, time float64, hops int64) {
	if r.err != nil {
		return
	}
	if !r.begun || !finite(duration) || duration < 0 || !finite(time) || time < r.time || hops < r.hops {
		r.err = fmt.Errorf("traj: invalid segment record seg=%d d=%v t=%v hops=%d begun=%v", seg, duration, time, hops, r.begun)
		return
	}
	r.buf = append(r.buf, opSegment)
	r.buf = binary.AppendUvarint(r.buf, seg)
	r.buf = appendF64(r.buf, duration)
	r.buf = appendF64(r.buf, time)
	r.buf = binary.AppendUvarint(r.buf, uint64(hops))
	r.hops = hops
	r.time = time
	r.events++
	r.sinceSnap++
	r.maybeFlush()
}

// SnapshotDue reports whether the snapshot cadence has elapsed.
func (r *Recorder) SnapshotDue() bool {
	return r.every > 0 && r.sinceSnap >= r.every
}

// Snapshot persists a full-state snapshot next to the log and appends a
// record naming it. save is handed the snapshot file path (derived
// deterministically from the hop count, so a replayed interval
// overwrites the identical snapshot) and must write it crash-safely.
func (r *Recorder) Snapshot(hops int64, time float64, save func(path string) error) error {
	if r.err != nil {
		return r.err
	}
	if !r.begun {
		return fmt.Errorf("traj: snapshot before begin")
	}
	if hops != r.hops || time != r.time {
		return fmt.Errorf("traj: snapshot state (hops=%d t=%v) does not match log tail (hops=%d t=%v)", hops, time, r.hops, r.time)
	}
	full := fmt.Sprintf("%s.snap-%d", r.path, hops)
	if err := save(full); err != nil {
		return fmt.Errorf("traj: writing snapshot: %w", err)
	}
	name := filepath.Base(full)
	r.buf = append(r.buf, opSnapshot)
	r.buf = binary.AppendUvarint(r.buf, uint64(hops))
	r.buf = appendF64(r.buf, time)
	r.buf = binary.AppendUvarint(r.buf, uint64(len(name)))
	r.buf = append(r.buf, name...)
	r.sinceSnap = 0
	r.snaps++
	r.journal.RecordSim("traj", time, "snapshot %s at hop %d", name, hops)
	r.maybeFlush()
	return r.err
}

// Commit makes all buffered records durable (frame write + fsync) and
// indexes the new frame boundary as a rollback mark. The caller passes
// its current (hops, time) state; a mismatch with the log tail means
// events were dropped and is a sticky error — the log refuses to
// certify a trajectory it did not fully see. Core calls Commit before
// every checkpoint write, so the log is never behind a checkpoint.
func (r *Recorder) Commit(hops int64, time float64) error {
	if r.err != nil {
		return r.err
	}
	if !r.begun {
		return fmt.Errorf("traj: commit before begin")
	}
	if hops != r.hops || time != r.time {
		r.err = fmt.Errorf("traj: commit state (hops=%d t=%v) does not match log tail (hops=%d t=%v): events were not recorded", hops, time, r.hops, r.time)
		return r.err
	}
	if len(r.buf) == 0 && r.tail == len(r.marks)-1 {
		return nil // nothing new and no pending truncate
	}
	return r.flush(true)
}

// Rollback rewinds the logical log tail to a previously committed mark
// matching (hops, time) bit-exactly — the state a restored checkpoint
// re-enters — and appends a recovery record. The file is not touched
// until the next write (lazy truncate), so a failed restore candidate
// does not burn later marks. It fails closed when no exact mark exists:
// resuming a log from a state it never committed would corrupt it.
func (r *Recorder) Rollback(hops int64, time float64) error {
	if r.err != nil {
		return r.err
	}
	if !r.begun {
		return fmt.Errorf("traj: rollback before begin")
	}
	for i := len(r.marks) - 1; i >= 1; i-- {
		if r.marks[i].hops == hops && r.marks[i].time == time {
			r.buf = r.buf[:0]
			r.tail = i
			r.hops = hops
			r.time = time
			r.sinceSnap = 0
			detail := "restored"
			r.buf = append(r.buf, opRecovery)
			r.buf = binary.AppendUvarint(r.buf, uint64(hops))
			r.buf = appendF64(r.buf, time)
			r.buf = binary.AppendUvarint(r.buf, uint64(len(detail)))
			r.buf = append(r.buf, detail...)
			r.journal.RecordSim("traj", time, "rollback to hop %d after recovery", hops)
			return nil
		}
	}
	return fmt.Errorf("traj: no committed mark at hops=%d t=%v; log cannot resume from this state", hops, time)
}

// Stats returns the recorder's activity counters.
func (r *Recorder) Stats() Stats {
	bytes := r.marks[r.tail].off
	return Stats{Events: r.events, Bytes: bytes, Snapshots: r.snaps}
}

// Close flushes nothing (call Commit first for durability) and releases
// the file handle. A recorder with only uncommitted buffered records
// loses them, by design: they were never acknowledged.
func (r *Recorder) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// maybeFlush emits an intermediate unsynced frame when the buffer grows
// past the flush threshold, bounding memory on long chunks.
func (r *Recorder) maybeFlush() {
	if len(r.buf) >= flushThreshold {
		if err := r.flush(false); err != nil && r.err == nil {
			r.err = err
		}
	}
}

// flush performs any pending rollback truncation, writes the buffered
// records as one frame, optionally fsyncs, and appends a mark.
func (r *Recorder) flush(sync bool) error {
	if r.err != nil {
		return r.err
	}
	if r.tail < len(r.marks)-1 {
		// Lazy rollback: now that new records follow, discard the
		// abandoned suffix for real.
		off := r.marks[r.tail].off
		if err := r.f.Truncate(off); err != nil {
			r.err = fmt.Errorf("traj: truncating rolled-back tail: %w", err)
			return r.err
		}
		if _, err := r.f.Seek(off, 0); err != nil {
			r.err = err
			return r.err
		}
		r.marks = r.marks[:r.tail+1]
	}
	if len(r.buf) == 0 {
		if sync {
			if err := r.f.Sync(); err != nil {
				r.err = fmt.Errorf("traj: fsync: %w", err)
				return r.err
			}
		}
		return nil
	}
	frame := make([]byte, 0, len(r.buf)+8)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(r.buf)))
	frame = append(frame, r.buf...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(r.buf))
	if _, err := r.f.Write(frame); err != nil {
		// Best effort rewind so a partial frame does not linger; the
		// reader would truncate it anyway.
		r.f.Truncate(r.marks[len(r.marks)-1].off)
		r.err = fmt.Errorf("traj: writing frame: %w", err)
		return r.err
	}
	if sync {
		if err := r.f.Sync(); err != nil {
			r.err = fmt.Errorf("traj: fsync: %w", err)
			return r.err
		}
	}
	r.marks = append(r.marks, mark{
		off:  r.marks[len(r.marks)-1].off + int64(len(frame)),
		hops: r.hops,
		time: r.time,
	})
	r.tail = len(r.marks) - 1
	r.buf = r.buf[:0]
	return nil
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
