package units

import (
	"math"
	"testing"
)

func TestBeta(t *testing.T) {
	b := Beta(573)
	want := 1.0 / (KB * 573)
	if math.Abs(b-want) > 1e-12 {
		t.Fatalf("Beta(573) = %v, want %v", b, want)
	}
	// kT at 573 K should be about 49.4 meV.
	kt := 1 / b
	if kt < 0.049 || kt > 0.050 {
		t.Fatalf("kT at 573 K = %v eV, want ~0.0494 eV", kt)
	}
}

func TestArrheniusRateMagnitude(t *testing.T) {
	// A pure-Fe hop barrier of 0.65 eV at 573 K yields a rate of order
	// 1e7/s; this anchors the simulated-time scale of the whole code.
	r := ArrheniusRate(EA0Fe, ReactorTemperature)
	if r < 1e6 || r > 1e8 {
		t.Fatalf("Fe hop rate at 573K = %v, want order 1e7", r)
	}
}

func TestArrheniusRateClamping(t *testing.T) {
	if got := ArrheniusRate(-0.5, 573); got != AttemptFrequency {
		t.Fatalf("negative barrier rate = %v, want Γ₀ = %v", got, AttemptFrequency)
	}
	if got := ArrheniusRate(0, 573); got != AttemptFrequency {
		t.Fatalf("zero barrier rate = %v, want Γ₀", got)
	}
}

func TestArrheniusRateMonotonicity(t *testing.T) {
	prev := math.Inf(1)
	for ea := 0.1; ea <= 2.0; ea += 0.1 {
		r := ArrheniusRate(ea, 573)
		if r >= prev {
			t.Fatalf("rate not decreasing in Ea at Ea=%v: %v >= %v", ea, r, prev)
		}
		prev = r
	}
	tPrev := 0.0
	for temp := 100.0; temp <= 1200; temp += 100 {
		r := ArrheniusRate(0.65, temp)
		if r <= tPrev {
			t.Fatalf("rate not increasing in T at T=%v", temp)
		}
		tPrev = r
	}
}

func TestMigrationEnergy(t *testing.T) {
	// Eq. (2): Ea = Ea0 + ΔE/2.
	if got := MigrationEnergy(0.65, 0.2); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("MigrationEnergy = %v, want 0.75", got)
	}
	if got := MigrationEnergy(0.56, -0.3); math.Abs(got-0.41) > 1e-15 {
		t.Fatalf("MigrationEnergy = %v, want 0.41", got)
	}
}

func TestDetailedBalance(t *testing.T) {
	// Forward and reverse hops between states with energy difference ΔE
	// must satisfy Γ_f/Γ_r = exp(−ΔE/kT) when both barriers are positive,
	// which is what makes equilibrium distributions Boltzmann.
	const dE = 0.12
	const temp = 573.0
	f := ArrheniusRate(MigrationEnergy(EA0Fe, dE), temp)
	r := ArrheniusRate(MigrationEnergy(EA0Fe, -dE), temp)
	ratio := f / r
	want := math.Exp(-dE * Beta(temp))
	if math.Abs(ratio-want)/want > 1e-12 {
		t.Fatalf("detailed balance violated: ratio=%v want %v", ratio, want)
	}
}
