package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer aggregates hot-path spans into a per-phase timing tree. It is
// deliberately not an allocating per-span tracer: a KMC step fires
// four spans and a run fires millions of steps, so each span is two
// wall-clock reads and two atomic adds on a pre-resolved *Phase node.
// The tree (phase → children, each with total seconds and a count) is
// what the end-of-run breakdown table and the coverage test read.
//
// Phase resolution is get-or-create on (parent, name), so independent
// layers referring to the same well-known path (the Phase* constants)
// share one node without handles being threaded through constructors.
type Tracer struct {
	reg *Registry

	mu    sync.Mutex
	roots map[string]*Phase
	order []string
}

// NewTracer builds a tracer. reg, if non-nil, additionally receives
// every phase's timings as a tkmc_phase_seconds histogram labelled
// with the phase's full path.
func NewTracer(reg *Registry) *Tracer {
	return &Tracer{reg: reg, roots: map[string]*Phase{}}
}

// Phase is one node of the timing tree. Concurrent spans on the same
// phase (e.g. parallel ranks in the same sector phase) accumulate
// atomically; their wall-clock intervals may overlap, so a phase's
// total is CPU-like ("rank-seconds") on parallel runs and wall-like on
// serial runs.
type Phase struct {
	t    *Tracer
	name string
	path string

	seconds atomic.Uint64 // float64 bits, CAS-accumulated
	count   atomic.Int64
	hist    *Histogram

	mu       sync.Mutex
	children map[string]*Phase
	order    []string
}

// Phase returns (creating if needed) a root-level phase. Nil tracers
// return a nil (no-op) phase.
func (t *Tracer) Phase(name string) *Phase {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.roots[name]
	if p == nil {
		p = t.newPhase(name, name)
		t.roots[name] = p
		t.order = append(t.order, name)
	}
	return p
}

// PhaseAt resolves a phase by path, creating intermediate nodes as
// needed: PhaseAt("run", "segment", "eval") is
// Phase("run").Child("segment").Child("eval").
func (t *Tracer) PhaseAt(path ...string) *Phase {
	if t == nil || len(path) == 0 {
		return nil
	}
	p := t.Phase(path[0])
	for _, name := range path[1:] {
		p = p.Child(name)
	}
	return p
}

func (t *Tracer) newPhase(name, path string) *Phase {
	p := &Phase{t: t, name: name, path: path, children: map[string]*Phase{}}
	p.hist = t.reg.Histogram(MetricPhaseSeconds,
		"Span durations per phase of the KMC step pipeline.",
		DefTimeBuckets, "phase", path)
	return p
}

// Child returns (creating if needed) a sub-phase. Nil phases return
// nil.
func (p *Phase) Child(name string) *Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.children[name]
	if c == nil {
		c = p.t.newPhase(name, p.path+"/"+name)
		p.children[name] = c
		p.order = append(p.order, name)
	}
	return c
}

// Stopwatch is one in-flight span. The zero value (from a nil phase)
// is a no-op.
type Stopwatch struct {
	p     *Phase
	start time.Time
}

// Start opens a span on the phase. Always pair with Stop.
func (p *Phase) Start() Stopwatch {
	if p == nil {
		return Stopwatch{}
	}
	return Stopwatch{p: p, start: time.Now()}
}

// Stop closes the span, folding its duration into the phase.
func (sw Stopwatch) Stop() {
	if sw.p == nil {
		return
	}
	sw.p.Observe(time.Since(sw.start))
}

// Observe records a span of the given duration directly.
func (p *Phase) Observe(d time.Duration) {
	if p == nil {
		return
	}
	sec := d.Seconds()
	for {
		old := p.seconds.Load()
		next := math.Float64bits(math.Float64frombits(old) + sec)
		if p.seconds.CompareAndSwap(old, next) {
			break
		}
	}
	p.count.Add(1)
	p.hist.Observe(sec)
}

// Seconds returns the phase's accumulated span time.
func (p *Phase) Seconds() float64 {
	if p == nil {
		return 0
	}
	return math.Float64frombits(p.seconds.Load())
}

// Count returns the number of closed spans.
func (p *Phase) Count() int64 {
	if p == nil {
		return 0
	}
	return p.count.Load()
}

// SpanNode is one node of a timing-tree snapshot.
type SpanNode struct {
	Name     string     `json:"name"`
	Path     string     `json:"path"`
	Count    int64      `json:"count"`
	Seconds  float64    `json:"seconds"`
	Children []SpanNode `json:"children,omitempty"`
}

// ChildSeconds sums the direct children's totals.
func (n SpanNode) ChildSeconds() float64 {
	var s float64
	for _, c := range n.Children {
		s += c.Seconds
	}
	return s
}

// Coverage reports which fraction of this node's time its direct
// children account for (1 for a leaf with no time unaccounted, 0 for
// an idle node). It is the self-check that the instrumentation sees
// where a run's time actually goes.
func (n SpanNode) Coverage() float64 {
	if n.Seconds <= 0 {
		return 0
	}
	return n.ChildSeconds() / n.Seconds
}

func (p *Phase) snapshot() SpanNode {
	n := SpanNode{Name: p.name, Path: p.path, Count: p.Count(), Seconds: p.Seconds()}
	p.mu.Lock()
	order := append([]string(nil), p.order...)
	children := make([]*Phase, 0, len(order))
	for _, name := range order {
		children = append(children, p.children[name])
	}
	p.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.snapshot())
	}
	return n
}

// Spans snapshots the whole timing forest in registration order.
func (t *Tracer) Spans() []SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	order := append([]string(nil), t.order...)
	roots := make([]*Phase, 0, len(order))
	for _, name := range order {
		roots = append(roots, t.roots[name])
	}
	t.mu.Unlock()
	out := make([]SpanNode, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.snapshot())
	}
	return out
}

// WriteTable renders the per-phase timing breakdown as an indented
// table — the run-summary view of where each KMC step spends its time
// (the paper's Sec. 5 per-step decomposition). Percentages are of the
// parent phase's total.
func (t *Tracer) WriteTable(w io.Writer) error {
	if t == nil {
		return nil
	}
	roots := t.Spans()
	if len(roots) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-32s %12s %14s %12s %8s\n", "phase", "count", "total", "mean", "%parent"); err != nil {
		return err
	}
	for _, r := range roots {
		if err := writeSpanRows(w, r, 0, r.Seconds); err != nil {
			return err
		}
	}
	return nil
}

func writeSpanRows(w io.Writer, n SpanNode, depth int, parentSeconds float64) error {
	if n.Count == 0 && n.Seconds == 0 && len(n.Children) == 0 {
		return nil
	}
	name := strings.Repeat("  ", depth) + n.Name
	pct := "—"
	if depth > 0 && parentSeconds > 0 {
		pct = fmt.Sprintf("%.1f", 100*n.Seconds/parentSeconds)
	}
	mean := "—"
	if n.Count > 0 {
		mean = formatSeconds(n.Seconds / float64(n.Count))
	}
	if _, err := fmt.Fprintf(w, "%-32s %12d %14s %12s %8s\n",
		name, n.Count, formatSeconds(n.Seconds), mean, pct); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeSpanRows(w, c, depth+1, n.Seconds); err != nil {
			return err
		}
	}
	return nil
}

// formatSeconds renders a duration with a human-scale unit.
func formatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s >= 1:
		return fmt.Sprintf("%.3f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3f µs", s*1e6)
	default:
		return fmt.Sprintf("%.0f ns", s*1e9)
	}
}
