package input

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tensorkmc/internal/core"
	"tensorkmc/internal/lattice"
)

const sampleDeck = `
# Fig. 8 conditions
cells        100 100 100
lattice      2.87
cu           0.0134
vacancy      0.000008   # 8e-4 at.%
temperature  573
cutoff       6.5
duration     1e-3
seed         42
potential    eam
ranks        2 2 1
tstop        2e-8
snapshots    10
`

func TestParseSample(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Config
	if c.Cells != [3]int{100, 100, 100} || c.Ranks != [3]int{2, 2, 1} {
		t.Fatalf("geometry wrong: %+v", c)
	}
	if c.LatticeConstant != 2.87 || c.CuFraction != 0.0134 || c.VacancyFraction != 8e-6 {
		t.Fatalf("composition wrong: %+v", c)
	}
	if c.Temperature != 573 || c.Cutoff != 6.5 || c.TStop != 2e-8 || c.Seed != 42 {
		t.Fatalf("physics wrong: %+v", c)
	}
	if d.Duration != 1e-3 || d.Snapshots != 10 {
		t.Fatalf("run control wrong: %+v", d)
	}
	if c.Potential != core.EAM {
		t.Fatal("potential wrong")
	}
	cfg, err := d.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Net != nil {
		t.Fatal("EAM deck should not load a net")
	}
}

func TestParseMinimal(t *testing.T) {
	d, err := Parse(strings.NewReader("cells 4 4 4\nduration 1e-8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.Cells != [3]int{4, 4, 4} {
		t.Fatal("cells wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown key":      "cells 4 4 4\nduration 1\nbogus 1\n",
		"missing cells":    "duration 1\n",
		"missing duration": "cells 4 4 4\n",
		"bad cells":        "cells 4 x 4\nduration 1\n",
		"short cells":      "cells 4 4\nduration 1\n",
		"bad float":        "cells 4 4 4\nduration abc\n",
		"bad seed":         "cells 4 4 4\nduration 1\nseed -3\n",
		"bad potential":    "cells 4 4 4\nduration 1\npotential lda\n",
		"nnp no file":      "cells 4 4 4\nduration 1\npotential nnp\n",
		"neg snapshots":    "cells 4 4 4\nduration 1\nsnapshots -1\n",
	}
	for name, deck := range cases {
		if _, err := Parse(strings.NewReader(deck)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	deck := "# full line comment\n\n   \ncells 2 2 2 # trailing\nduration 1\n"
	if _, err := Parse(strings.NewReader(deck)); err != nil {
		t.Fatal(err)
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "input")
	if err := os.WriteFile(path, []byte(sampleDeck), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.Seed != 42 {
		t.Fatal("file parse wrong")
	}
	if _, err := ParseFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestFinishMissingPotentialFile(t *testing.T) {
	d, err := Parse(strings.NewReader("cells 4 4 4\nduration 1\npotential nnp /nonexistent.pot\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Finish(); err == nil {
		t.Fatal("expected error loading missing potential")
	}
}

func TestDumpCheckpointRestartKeys(t *testing.T) {
	deck := `
cells 4 4 4
duration 1
dump solute
checkpoint state.box
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if d.DumpFile != "solute" || d.CheckpointFile != "state.box" {
		t.Fatalf("dump/checkpoint not parsed: %+v", d)
	}
	// Restart replaces the cells requirement.
	d2, err := Parse(strings.NewReader("restart prev.box\nduration 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d2.RestartFile != "prev.box" {
		t.Fatal("restart not parsed")
	}
	// Malformed variants.
	for _, bad := range []string{
		"cells 4 4 4\nduration 1\ndump\n",
		"cells 4 4 4\nduration 1\ncheckpoint\n",
		"cells 4 4 4\nduration 1\nrestart a b\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted malformed deck %q", bad)
		}
	}
}

func TestRestartFinishLoadsBox(t *testing.T) {
	dir := t.TempDir()
	box := lattice.NewBox(4, 4, 4, 2.87)
	box.Set(lattice.Vec{X: 1, Y: 1, Z: 1}, lattice.Cu)
	path := filepath.Join(dir, "prev.box")
	if err := box.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(strings.NewReader("restart " + path + "\nduration 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := d.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.InitialBox == nil || !cfg.InitialBox.Equal(box) {
		t.Fatal("Finish did not load the restart box")
	}
}

func TestBondcountPotentialKey(t *testing.T) {
	d, err := Parse(strings.NewReader("cells 4 4 4\nduration 1\npotential bondcount\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.Potential != core.BondCount {
		t.Fatal("bondcount potential not parsed")
	}
}

func TestCheckpointEveryKey(t *testing.T) {
	d, err := Parse(strings.NewReader("cells 4 4 4\nduration 1\ncheckpoint s.ck\ncheckpoint_every 1e-4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.CheckpointEvery != 1e-4 {
		t.Fatalf("CheckpointEvery = %v", d.CheckpointEvery)
	}
	cfg, err := d.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CheckpointPath != "s.ck" || cfg.CheckpointEvery != 1e-4 {
		t.Fatalf("checkpoint config not forwarded: %+v", cfg)
	}
	// The interval is meaningless without a checkpoint path, and must
	// be a positive duration.
	for _, bad := range []string{
		"cells 4 4 4\nduration 1\ncheckpoint_every 1e-4\n",
		"cells 4 4 4\nduration 1\ncheckpoint s.ck\ncheckpoint_every 0\n",
		"cells 4 4 4\nduration 1\ncheckpoint s.ck\ncheckpoint_every -1\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted bad deck %q", bad)
		}
	}
}

// TestRestartFinishFullState: a TKMCBOX2 restart file carries the clock
// and RNG state through to the config.
func TestRestartFinishFullState(t *testing.T) {
	dir := t.TempDir()
	box := lattice.NewBox(4, 4, 4, 2.87)
	box.Set(lattice.Vec{X: 1, Y: 1, Z: 1}, lattice.Vacancy)
	ck := &core.Checkpoint{Box: box, Time: 3e-7, Hops: 99, HasRNG: true, RNG: [4]uint64{1, 2, 3, 4}}
	path := filepath.Join(dir, "prev.ck")
	if err := ck.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(strings.NewReader("restart " + path + "\nduration 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := d.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Restart == nil || cfg.Restart.Time != 3e-7 || cfg.Restart.Hops != 99 || !cfg.Restart.HasRNG {
		t.Fatalf("full restart state not loaded: %+v", cfg.Restart)
	}
	if cfg.InitialBox == nil || !cfg.InitialBox.Equal(box) {
		t.Fatal("restart box not loaded")
	}
}

func TestEvalServiceKeys(t *testing.T) {
	deck := "cells 4 4 4\nduration 1e-8\n" +
		"eval_cache 4096\neval_shards 4\neval_batch 16\neval_workers 3\neval_f32 on\neval_speculate 3\n"
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Config
	if c.EvalCache != 4096 || c.EvalShards != 4 || c.EvalBatch != 16 || c.EvalWorkers != 3 || !c.EvalF32 || c.EvalSpeculate != 3 {
		t.Fatalf("eval keys misparsed: %+v", c)
	}

	for name, bad := range map[string]string{
		"neg cache": "cells 4 4 4\nduration 1\neval_cache -1\n",
		"neg spec":  "cells 4 4 4\nduration 1\neval_speculate -2\n",
		"bad f32":   "cells 4 4 4\nduration 1\neval_f32 maybe\n",
		"no value":  "cells 4 4 4\nduration 1\neval_batch\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEvalFleetKeys(t *testing.T) {
	deck := "cells 4 4 4\nduration 1e-8\n" +
		"eval_fleet 10.0.0.1:7077 10.0.0.2:7077\neval_retry 3\neval_timeout 2.5\n"
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Config
	if len(c.EvalFleet) != 2 || c.EvalFleet[0] != "10.0.0.1:7077" || c.EvalFleet[1] != "10.0.0.2:7077" {
		t.Fatalf("eval_fleet misparsed: %+v", c.EvalFleet)
	}
	if c.EvalRetry != 3 {
		t.Fatalf("eval_retry misparsed: %d", c.EvalRetry)
	}
	if c.EvalTimeout != 2500*time.Millisecond {
		t.Fatalf("eval_timeout misparsed: %v", c.EvalTimeout)
	}
	if !c.EvalFallback {
		t.Fatal("fleet run did not default eval_fallback on")
	}

	// Explicit off must stick regardless of key order.
	d, err = Parse(strings.NewReader("eval_fallback off\ncells 4 4 4\nduration 1\neval_fleet a:1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.EvalFallback {
		t.Fatal("explicit eval_fallback off was overridden")
	}

	// An explicit zero retry budget means none, not "default".
	d, err = Parse(strings.NewReader("cells 4 4 4\nduration 1\neval_fleet a:1\neval_retry 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.EvalRetry >= 0 {
		t.Fatalf("eval_retry 0 parsed as %d, want negative (disabled)", d.Config.EvalRetry)
	}

	for name, bad := range map[string]string{
		"fleet no addr":       "cells 4 4 4\nduration 1\neval_fleet\n",
		"retry sans fleet":    "cells 4 4 4\nduration 1\neval_retry 2\n",
		"timeout sans fleet":  "cells 4 4 4\nduration 1\neval_timeout 5\n",
		"fallback sans fleet": "cells 4 4 4\nduration 1\neval_fallback on\n",
		"neg retry":           "cells 4 4 4\nduration 1\neval_fleet a:1\neval_retry -1\n",
		"zero timeout":        "cells 4 4 4\nduration 1\neval_fleet a:1\neval_timeout 0\n",
		"bad fallback":        "cells 4 4 4\nduration 1\neval_fleet a:1\neval_fallback maybe\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestObservabilityKeys(t *testing.T) {
	deck := "cells 4 4 4\nduration 1e-8\n" +
		"trace on\nslo_p99 0.005\nslo_error_rate 0.01\nslo_window 30\nslo_burn 3\nblackbox_dir /tmp/bb\n"
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Config
	if !c.Trace {
		t.Fatal("trace on misparsed")
	}
	if c.SLO.P99 != 5*time.Millisecond || c.SLO.ErrorRate != 0.01 ||
		c.SLO.Window != 30*time.Second || c.SLO.Burn != 3 || c.SLO.CaptureDir != "/tmp/bb" {
		t.Fatalf("slo keys misparsed: %+v", c.SLO)
	}

	// trace off is the default and explicit off parses.
	d, err = Parse(strings.NewReader("cells 4 4 4\nduration 1\ntrace off\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.Trace {
		t.Fatal("trace off misparsed")
	}

	for name, bad := range map[string]string{
		"bad trace":         "cells 4 4 4\nduration 1\ntrace maybe\n",
		"neg p99":           "cells 4 4 4\nduration 1\nslo_p99 -1\n",
		"rate over 1":       "cells 4 4 4\nduration 1\nslo_error_rate 1.5\n",
		"zero burn":         "cells 4 4 4\nduration 1\nslo_p99 1\nslo_burn 0\n",
		"window sans slo":   "cells 4 4 4\nduration 1\nslo_window 30\n",
		"burn sans slo":     "cells 4 4 4\nduration 1\nslo_burn 2\n",
		"capture sans slo":  "cells 4 4 4\nduration 1\nblackbox_dir /tmp/x\n",
		"blackbox no value": "cells 4 4 4\nduration 1\nslo_p99 1\nblackbox_dir\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
