package feature

import (
	"math"

	"tensorkmc/internal/lattice"
)

// The continuous path evaluates the descriptor on off-lattice structures
// (the NNP training set): atoms at arbitrary positions in a periodic
// orthorhombic cell. Training supercells are small (60–64 atoms), often
// thinner than 2·r_cut, so plain minimum-image is insufficient: all
// periodic images within the cutoff are enumerated explicitly.

// PairTerm records one interacting (atom, neighbour-image) pair: the
// distance, the unit vector from J's image to I, and the two atoms'
// indices. Self-image pairs (I == J through a periodic image) are
// included.
type PairTerm struct {
	I, J int
	R    float64
	Unit [3]float64 // (pos_I − image(pos_J)) / R
}

// Pairs enumerates every interacting pair within the descriptor cutoff.
func (d *Descriptor) Pairs(pos [][3]float64, cell [3]float64) []PairTerm {
	return Pairs(pos, cell, d.Rcut)
}

// Pairs enumerates every interacting pair within rcut: each physical bond
// appears once (I ≤ J, with image shifts deduplicated by construction for
// I == J). It is shared by the NNP descriptor and the EAM oracle.
func Pairs(pos [][3]float64, cell [3]float64, rcut float64) []PairTerm {
	var out []PairTerm
	var shifts [][3]float64
	reach := [3]int{}
	for a := 0; a < 3; a++ {
		reach[a] = int(math.Ceil(rcut / cell[a]))
	}
	for ix := -reach[0]; ix <= reach[0]; ix++ {
		for iy := -reach[1]; iy <= reach[1]; iy++ {
			for iz := -reach[2]; iz <= reach[2]; iz++ {
				shifts = append(shifts, [3]float64{
					float64(ix) * cell[0], float64(iy) * cell[1], float64(iz) * cell[2]})
			}
		}
	}
	r2cut := rcut * rcut
	for i := 0; i < len(pos); i++ {
		for j := i; j < len(pos); j++ {
			for _, s := range shifts {
				if i == j {
					// A self-pair through the zero shift is the atom
					// itself; through shift s and −s it is the same
					// bond twice — keep only the lexicographically
					// positive shift.
					if s == ([3]float64{}) {
						continue
					}
					if s[0] < 0 || (s[0] == 0 && (s[1] < 0 || (s[1] == 0 && s[2] < 0))) {
						continue
					}
				}
				dx := pos[i][0] - pos[j][0] - s[0]
				dy := pos[i][1] - pos[j][1] - s[1]
				dz := pos[i][2] - pos[j][2] - s[2]
				r2 := dx*dx + dy*dy + dz*dz
				if r2 > r2cut || r2 == 0 {
					continue
				}
				r := math.Sqrt(r2)
				out = append(out, PairTerm{I: i, J: j, R: r, Unit: [3]float64{dx / r, dy / r, dz / r}})
			}
		}
	}
	return out
}

// ComputeStructure returns the per-atom feature matrix (len(pos) × Dim)
// for a periodic structure. Vacancy "atoms" (if present in spec) neither
// receive features nor contribute to neighbours'.
func (d *Descriptor) ComputeStructure(pos [][3]float64, spec []lattice.Species, cell [3]float64) [][]float64 {
	feats := make([][]float64, len(pos))
	for i := range feats {
		feats[i] = make([]float64, d.Dim())
	}
	vals := make([]float64, d.NDim())
	for _, p := range d.Pairs(pos, cell) {
		d.Eval(p.R, vals)
		d.accumulate(feats, spec, p, vals)
	}
	return feats
}

func (d *Descriptor) accumulate(feats [][]float64, spec []lattice.Species, p PairTerm, vals []float64) {
	nd := d.NDim()
	if spec[p.I].IsAtom() && spec[p.J].IsAtom() {
		baseI := int(spec[p.J]) * nd // I sees J's element
		baseJ := int(spec[p.I]) * nd // J sees I's element
		for c, v := range vals {
			feats[p.I][baseI+c] += v
			feats[p.J][baseJ+c] += v
		}
	}
}

// ComputeForces converts per-atom feature gradients ∂E/∂f (as produced by
// the NNP backward pass) into atomic forces F_k = −∂E/∂x_k via the
// analytic radial derivative of the descriptor.
func (d *Descriptor) ComputeForces(pos [][3]float64, spec []lattice.Species, cell [3]float64, featGrad [][]float64) [][3]float64 {
	forces := make([][3]float64, len(pos))
	nd := d.NDim()
	val := make([]float64, nd)
	der := make([]float64, nd)
	for _, p := range d.Pairs(pos, cell) {
		if !spec[p.I].IsAtom() || !spec[p.J].IsAtom() {
			continue
		}
		d.EvalDeriv(p.R, val, der)
		baseI := int(spec[p.J]) * nd
		baseJ := int(spec[p.I]) * nd
		// dE/dr for this bond: both endpoint feature vectors depend on r.
		var dEdr float64
		for c := 0; c < nd; c++ {
			dEdr += featGrad[p.I][baseI+c] * der[c]
			dEdr += featGrad[p.J][baseJ+c] * der[c]
		}
		// r = |x_I − image(x_J)|, so ∂r/∂x_I = Unit and ∂r/∂x_J = −Unit.
		for a := 0; a < 3; a++ {
			forces[p.I][a] -= dEdr * p.Unit[a]
			forces[p.J][a] += dEdr * p.Unit[a]
		}
	}
	return forces
}
