package mpi

import (
	"sync"
	"time"

	"tensorkmc/internal/rng"
)

// Chaos is a fault interposer for a World: under test control it drops,
// duplicates and delays point-to-point messages and stalls whole ranks,
// reproducing in-process the failure modes a 27.5M-core fabric exhibits
// statistically. All decisions draw from a seeded stream, so a chaos
// schedule is reproducible.
//
// Install with World.SetChaos before the ranks start. The zero
// probabilities mean "never"; a stalled rank swallows every message it
// would send or receive and refuses to arrive at barriers (peers detect
// it via BarrierTimeout/AllGatherTimeout).
type Chaos struct {
	mu      sync.Mutex
	rnd     *rng.Stream
	drop    float64
	dup     float64
	delayP  float64
	delay   time.Duration
	budget  int // remaining message faults to inject; -1 = unlimited
	stalled map[int]bool

	stats ChaosStats
}

// ChaosStats counts the faults actually injected.
type ChaosStats struct {
	Dropped    int64
	Duplicated int64
	Delayed    int64
}

// NewChaos returns an interposer whose fault schedule is driven by the
// given seed.
func NewChaos(seed uint64) *Chaos {
	return &Chaos{rnd: rng.New(seed), budget: -1, stalled: make(map[int]bool)}
}

// WithBudget bounds the total number of message faults (drops,
// duplications, delays) the interposer will inject before going quiet,
// modelling a transient network glitch rather than a permanently lossy
// fabric — the shape recovery tests need to prove a supervised run
// eventually converges. Negative means unlimited (the default). Rank
// stalls are a state, not a message fault, and are not budgeted.
func (c *Chaos) WithBudget(n int) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = n
	return c
}

// WithDrop sets the per-message drop probability and returns c.
func (c *Chaos) WithDrop(p float64) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drop = p
	return c
}

// WithDuplicate sets the per-message duplication probability and returns c.
func (c *Chaos) WithDuplicate(p float64) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dup = p
	return c
}

// WithDelay makes each message late by d with probability p and returns c.
// Delayed messages are re-delivered asynchronously, so FIFO ordering
// between a rank pair is deliberately violated.
func (c *Chaos) WithDelay(p float64, d time.Duration) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delayP, c.delay = p, d
	return c
}

// StallRank marks a rank dead: its messages vanish and it never arrives
// at another barrier.
func (c *Chaos) StallRank(r int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stalled[r] = true
}

// Stalled reports whether a rank is currently marked dead.
func (c *Chaos) Stalled(r int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalled[r]
}

// Revive clears a rank's dead mark — the in-process analogue of the
// scheduler allocating a replacement node, which a supervisor's
// teardown-and-rebuild then folds back into the world.
func (c *Chaos) Revive(r int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.stalled, r)
}

// Stats returns the injected-fault counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// onSend rolls the fault dice for one message.
func (c *Chaos) onSend(from, to int) (drop, dup bool, delay time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stalled[from] || c.stalled[to] {
		c.stats.Dropped++
		return true, false, 0
	}
	if c.budget == 0 {
		return false, false, 0
	}
	if c.drop > 0 && c.rnd.Float64() < c.drop {
		c.stats.Dropped++
		c.spendBudget()
		return true, false, 0
	}
	if c.dup > 0 && c.rnd.Float64() < c.dup {
		c.stats.Duplicated++
		c.spendBudget()
		dup = true
	}
	if c.delayP > 0 && c.rnd.Float64() < c.delayP {
		c.stats.Delayed++
		c.spendBudget()
		delay = c.delay
	}
	return false, dup, delay
}

// spendBudget consumes one unit of the fault budget (mu held).
func (c *Chaos) spendBudget() {
	if c.budget > 0 {
		c.budget--
	}
}
