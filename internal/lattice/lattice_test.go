package lattice

import (
	"math"
	"testing"
	"testing/quick"

	"tensorkmc/internal/rng"
	"tensorkmc/internal/units"
)

func TestSpeciesString(t *testing.T) {
	cases := map[Species]string{Fe: "Fe", Cu: "Cu", Vacancy: "Vac", Species(9): "Species(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestSpeciesEA0(t *testing.T) {
	if Fe.EA0() != units.EA0Fe || Cu.EA0() != units.EA0Cu {
		t.Fatal("EA0 constants do not match units package")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Vacancy.EA0() did not panic")
		}
	}()
	Vacancy.EA0()
}

func TestVecParity(t *testing.T) {
	valid := []Vec{{0, 0, 0}, {1, 1, 1}, {2, 0, 0}, {-1, 1, -1}, {3, -1, 1}}
	for _, v := range valid {
		if !v.IsSite() {
			t.Errorf("%v should be a site", v)
		}
	}
	invalid := []Vec{{1, 0, 0}, {1, 1, 0}, {0, 1, 1}, {2, 1, 2}}
	for _, v := range invalid {
		if v.IsSite() {
			t.Errorf("%v should not be a site", v)
		}
	}
}

func TestNN1Geometry(t *testing.T) {
	seen := map[Vec]bool{}
	for _, v := range NN1 {
		if v.Norm2() != 3 {
			t.Errorf("1NN offset %v has |v|² = %d, want 3", v, v.Norm2())
		}
		if !v.IsOffset() {
			t.Errorf("1NN offset %v violates parity", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("NN1 has %d distinct offsets, want 8", len(seen))
	}
	// 1NN physical distance for a = 2.87 Å is a·√3/2 ≈ 2.485 Å.
	d := NN1[0].Dist(units.LatticeConstantFe)
	if math.Abs(d-2.4855) > 1e-3 {
		t.Fatalf("1NN distance = %v Å, want ≈2.485", d)
	}
}

// TestShellPopulations pins the cumulative bcc neighbour-shell counts that
// produce the paper's N_local values: 112 at r_cut = 6.5 Å and 64 at the
// short 5.8 Å cutoff (Sec. 4.1.1 / Fig. 11).
func TestShellPopulations(t *testing.T) {
	n2 := HalfUnitsForCutoff(units.CutoffStandard, units.LatticeConstantFe)
	offs := OffsetsWithin(n2)
	if len(offs) != 112 {
		t.Fatalf("N_local at 6.5 Å = %d, want 112", len(offs))
	}
	n2s := HalfUnitsForCutoff(units.CutoffShort, units.LatticeConstantFe)
	offsShort := OffsetsWithin(n2s)
	if len(offsShort) != 64 {
		t.Fatalf("N_local at 5.8 Å = %d, want 64", len(offsShort))
	}
	// Shell structure: 8 at |v|²=3, 6 at 4, 12 at 8, 24 at 11, 8 at 12,
	// 6 at 16, 24 at 19, 24 at 20.
	shell := map[int]int{}
	for _, v := range offs {
		shell[v.Norm2()]++
	}
	want := map[int]int{3: 8, 4: 6, 8: 12, 11: 24, 12: 8, 16: 6, 19: 24, 20: 24}
	for n2, count := range want {
		if shell[n2] != count {
			t.Errorf("shell |v|²=%d has %d sites, want %d", n2, shell[n2], count)
		}
	}
}

func TestOffsetsSortedAndDeduped(t *testing.T) {
	offs := OffsetsWithin(20)
	seen := map[Vec]bool{}
	prev := -1
	for _, v := range offs {
		if seen[v] {
			t.Fatalf("duplicate offset %v", v)
		}
		seen[v] = true
		if v.Norm2() < prev {
			t.Fatalf("offsets not sorted by shell at %v", v)
		}
		prev = v.Norm2()
	}
}

func TestBoxIndexRoundTrip(t *testing.T) {
	b := NewBox(3, 4, 5, units.LatticeConstantFe)
	if b.NumSites() != 2*3*4*5 {
		t.Fatalf("NumSites = %d, want %d", b.NumSites(), 120)
	}
	seen := make([]bool, b.NumSites())
	for i := 0; i < b.NumSites(); i++ {
		v := b.SiteAt(i)
		if !v.IsSite() {
			t.Fatalf("SiteAt(%d) = %v is not a site", i, v)
		}
		j := b.Index(v)
		if j != i {
			t.Fatalf("Index(SiteAt(%d)) = %d", i, j)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestBoxPeriodicWrap(t *testing.T) {
	b := NewBox(4, 4, 4, units.LatticeConstantFe)
	base := Vec{1, 1, 1}
	images := []Vec{
		{1 + 8, 1, 1}, {1, 1 - 8, 1}, {1 - 16, 1 + 8, 1 + 24},
	}
	want := b.Index(base)
	for _, im := range images {
		if got := b.Index(im); got != want {
			t.Errorf("periodic image %v indexed to %d, want %d", im, got, want)
		}
	}
}

func TestBoxGetSet(t *testing.T) {
	b := NewBox(2, 2, 2, units.LatticeConstantFe)
	v := Vec{1, 1, 1}
	b.Set(v, Cu)
	if b.Get(v) != Cu {
		t.Fatal("Get after Set failed")
	}
	if b.Get(Vec{1 + 4, 1, 1}) != Cu {
		t.Fatal("Get through periodic image failed")
	}
	fe, cu, vac := b.Count()
	if fe != 15 || cu != 1 || vac != 0 {
		t.Fatalf("Count = (%d,%d,%d), want (15,1,0)", fe, cu, vac)
	}
}

func TestBoxInvalidConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBox(0,1,1) did not panic")
		}
	}()
	NewBox(0, 1, 1, 2.87)
}

func TestBoxIndexRejectsNonSite(t *testing.T) {
	b := NewBox(2, 2, 2, 2.87)
	defer func() {
		if recover() == nil {
			t.Fatal("Index of non-site did not panic")
		}
	}()
	b.Index(Vec{1, 0, 0})
}

func TestBoxCloneEqual(t *testing.T) {
	b := NewBox(3, 3, 3, 2.87)
	r := rng.New(5)
	FillRandomAlloy(b, 0.1, 0.02, r)
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.SetIndex(0, Vacancy)
	if b.Equal(c) && b.GetIndex(0) != Vacancy {
		t.Fatal("clone aliases original storage")
	}
}

func TestFillRandomAlloyCounts(t *testing.T) {
	b := NewBox(10, 10, 10, 2.87)
	r := rng.New(77)
	nCu, nVac := FillRandomAlloy(b, 0.0134, 0.0008, r)
	fe, cu, vac := b.Count()
	if cu != nCu || vac != nVac {
		t.Fatalf("counted (%d Cu, %d vac), reported (%d, %d)", cu, vac, nCu, nVac)
	}
	wantCu := int(0.0134*float64(b.NumSites()) + 0.5)
	wantVac := int(0.0008*float64(b.NumSites()) + 0.5)
	if cu != wantCu || vac != wantVac {
		t.Fatalf("got %d Cu %d vac, want %d and %d", cu, vac, wantCu, wantVac)
	}
	if fe+cu+vac != b.NumSites() {
		t.Fatal("species counts do not cover the box")
	}
}

func TestFillRandomAlloyDeterministic(t *testing.T) {
	a := NewBox(6, 6, 6, 2.87)
	b := NewBox(6, 6, 6, 2.87)
	FillRandomAlloy(a, 0.05, 0.01, rng.New(3))
	FillRandomAlloy(b, 0.05, 0.01, rng.New(3))
	if !a.Equal(b) {
		t.Fatal("same seed produced different alloys")
	}
}

func TestVacancies(t *testing.T) {
	b := NewBox(4, 4, 4, 2.87)
	b.Set(Vec{0, 0, 0}, Vacancy)
	b.Set(Vec{3, 3, 3}, Vacancy)
	vs := Vacancies(b)
	if len(vs) != 2 {
		t.Fatalf("found %d vacancies, want 2", len(vs))
	}
	for _, v := range vs {
		if b.Get(v) != Vacancy {
			t.Fatalf("Vacancies returned non-vacancy site %v", v)
		}
	}
}

func TestBoxVolume(t *testing.T) {
	b := NewBox(100, 100, 100, 2.87)
	// (100 · 2.87 Å)³ = (2.87e-8 m · 100)³.
	want := math.Pow(100*2.87e-10, 3)
	if math.Abs(b.Volume()-want)/want > 1e-12 {
		t.Fatalf("Volume = %v, want %v", b.Volume(), want)
	}
}

func TestHalfUnitsForCutoff(t *testing.T) {
	// 6.5 Å with a = 2.87 Å → (2·6.5/2.87)² ≈ 20.52 → 20.
	if got := HalfUnitsForCutoff(6.5, 2.87); got != 20 {
		t.Fatalf("HalfUnitsForCutoff(6.5) = %d, want 20", got)
	}
	if got := HalfUnitsForCutoff(5.8, 2.87); got != 16 {
		t.Fatalf("HalfUnitsForCutoff(5.8) = %d, want 16", got)
	}
}

func TestVecDistQuick(t *testing.T) {
	f := func(x, y, z int8) bool {
		v := Vec{int(x), int(y), int(z)}
		d := v.Dist(2.0)
		want := math.Sqrt(float64(v.Norm2()))
		return math.Abs(d-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
