package eam

import (
	"math"
	"testing"

	"tensorkmc/internal/encoding"
	"tensorkmc/internal/kmc"
	"tensorkmc/internal/lattice"
	"tensorkmc/internal/rng"
	"tensorkmc/internal/units"
)

func bccStructure(n int, a float64) (pos [][3]float64, spec []lattice.Species, cell [3]float64) {
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pos = append(pos, [3]float64{a * float64(x), a * float64(y), a * float64(z)})
				pos = append(pos, [3]float64{a * (float64(x) + 0.5), a * (float64(y) + 0.5), a * (float64(z) + 0.5)})
				spec = append(spec, lattice.Fe, lattice.Fe)
			}
		}
	}
	cell = [3]float64{a * float64(n), a * float64(n), a * float64(n)}
	return
}

func TestCutoffWindow(t *testing.T) {
	p := New(Default())
	if p.fc(1.0) != 1 || p.fc(p.P.RCut) != 0 || p.fc(10) != 0 {
		t.Fatal("cutoff window endpoints wrong")
	}
	mid := p.fc((p.P.RIn + p.P.RCut) / 2)
	if math.Abs(mid-0.5) > 1e-12 {
		t.Fatalf("cutoff midpoint = %v, want 0.5", mid)
	}
	// Monotone decreasing on the taper.
	prev := 1.0
	for r := p.P.RIn; r <= p.P.RCut; r += 0.01 {
		v := p.fc(r)
		if v > prev+1e-12 {
			t.Fatal("cutoff not monotone")
		}
		prev = v
	}
}

func TestPairShape(t *testing.T) {
	p := New(Default())
	// Minimum at r0 with depth −ε (fc = 1 there since r0 < RIn).
	min := p.Pair(lattice.Fe, lattice.Fe, p.P.R0)
	if math.Abs(min+p.P.Epsilon[lattice.Fe][lattice.Fe]) > 1e-12 {
		t.Fatalf("pair minimum = %v, want %v", min, -p.P.Epsilon[lattice.Fe][lattice.Fe])
	}
	if d := p.PairDeriv(lattice.Fe, lattice.Fe, p.P.R0); math.Abs(d) > 1e-12 {
		t.Fatalf("pair derivative at minimum = %v, want 0", d)
	}
	// Strong repulsion well inside the core, zero beyond cutoff.
	if p.Pair(lattice.Fe, lattice.Fe, 1.2) <= 0 {
		t.Fatal("no core repulsion")
	}
	if p.Pair(lattice.Fe, lattice.Fe, 7.0) != 0 {
		t.Fatal("pair nonzero beyond cutoff")
	}
	if p.Pair(lattice.Fe, lattice.Cu, 2.5) != p.Pair(lattice.Cu, lattice.Fe, 2.5) {
		t.Fatal("pair not symmetric in elements")
	}
}

func TestDerivativesMatchNumerical(t *testing.T) {
	p := New(Default())
	const h = 1e-6
	for _, r := range []float64{1.8, 2.485, 3.3, 5.2, 6.1} {
		numPair := (p.Pair(lattice.Fe, lattice.Cu, r+h) - p.Pair(lattice.Fe, lattice.Cu, r-h)) / (2 * h)
		if got := p.PairDeriv(lattice.Fe, lattice.Cu, r); math.Abs(got-numPair) > 1e-6*(1+math.Abs(numPair)) {
			t.Fatalf("PairDeriv(%v) = %v, numeric %v", r, got, numPair)
		}
		numDens := (p.Density(lattice.Cu, r+h) - p.Density(lattice.Cu, r-h)) / (2 * h)
		if got := p.DensityDeriv(lattice.Cu, r); math.Abs(got-numDens) > 1e-6*(1+math.Abs(numDens)) {
			t.Fatalf("DensityDeriv(%v) = %v, numeric %v", r, got, numDens)
		}
	}
	for _, rho := range []float64{0.5, 2.0, 9.0} {
		num := (p.Embed(rho+h) - p.Embed(rho-h)) / (2 * h)
		if got := p.EmbedDeriv(rho); math.Abs(got-num) > 1e-6 {
			t.Fatalf("EmbedDeriv(%v) = %v, numeric %v", rho, got, num)
		}
	}
}

// TestCuClusteringFavourable pins the thermodynamic driver of the
// application experiment: bringing two Cu solutes from separated to
// adjacent 1NN positions must lower the total energy, otherwise no
// precipitation can occur.
func TestCuClusteringFavourable(t *testing.T) {
	p := New(Default())
	a := units.LatticeConstantFe
	pos, spec, cell := bccStructure(4, a)
	// Adjacent: atoms 0 (corner 0,0,0) and 1 (centre a/2,a/2,a/2).
	adj := append([]lattice.Species(nil), spec...)
	adj[0], adj[1] = lattice.Cu, lattice.Cu
	eAdj := p.StructureEnergy(pos, adj, cell)
	// Separated: corner (0,0,0) and a distant corner.
	sep := append([]lattice.Species(nil), spec...)
	far := 2 * (4*4 + 4) // index of cell (2,2,0) corner atom
	sep[0], sep[far] = lattice.Cu, lattice.Cu
	eSep := p.StructureEnergy(pos, sep, cell)
	if eAdj >= eSep {
		t.Fatalf("Cu clustering not favourable: adjacent %v >= separated %v", eAdj, eSep)
	}
	// The binding should be a modest fraction of an eV so barriers stay
	// physical.
	bind := eSep - eAdj
	if bind > 0.6 {
		t.Fatalf("Cu–Cu binding %v eV implausibly strong", bind)
	}
}

func TestStructureForcesMatchNumerical(t *testing.T) {
	p := New(Default())
	a := units.LatticeConstantFe
	pos, spec, cell := bccStructure(2, a)
	r := rng.New(42)
	for i := range pos {
		for ax := 0; ax < 3; ax++ {
			pos[i][ax] += 0.04 * r.NormFloat64()
		}
		if r.Float64() < 0.25 {
			spec[i] = lattice.Cu
		}
	}
	forces := p.StructureForces(pos, spec, cell)
	const h = 1e-6
	for _, i := range []int{0, 5, 9, 15} {
		for ax := 0; ax < 3; ax++ {
			orig := pos[i][ax]
			pos[i][ax] = orig + h
			ep := p.StructureEnergy(pos, spec, cell)
			pos[i][ax] = orig - h
			em := p.StructureEnergy(pos, spec, cell)
			pos[i][ax] = orig
			num := -(ep - em) / (2 * h)
			if math.Abs(num-forces[i][ax]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("atom %d axis %d: analytic %v vs numeric %v", i, ax, forces[i][ax], num)
			}
		}
	}
}

func TestForcesVanishOnPerfectLattice(t *testing.T) {
	p := New(Default())
	pos, spec, cell := bccStructure(2, units.LatticeConstantFe)
	for _, f := range p.StructureForces(pos, spec, cell) {
		for ax := 0; ax < 3; ax++ {
			if math.Abs(f[ax]) > 1e-10 {
				t.Fatalf("spurious force %v on perfect lattice", f)
			}
		}
	}
}

// TestRegionEvaluatorMatchesContinuous validates the tabulated lattice
// path against the continuous path: the energy CHANGE of a vacancy hop
// computed from region sums must equal the change of the full-structure
// energy computed continuously.
func TestRegionEvaluatorMatchesContinuous(t *testing.T) {
	p := New(Default())
	tb := encoding.New(units.LatticeConstantFe, units.CutoffStandard)
	ev := NewRegionEvaluator(p, tb)

	a := units.LatticeConstantFe
	const n = 12
	box := lattice.NewBox(n, n, n, a)
	lattice.FillRandomAlloy(box, 0.15, 0.0, rng.New(7))
	center := lattice.Vec{X: n, Y: n, Z: n}
	box.Set(center, lattice.Vacancy)

	vet := tb.NewVET()
	tb.FillVET(vet, center, box.Get)
	initial, final, valid := ev.HopEnergies(vet)

	// Continuous reference: enumerate the full box as a structure.
	makeStructure := func(b *lattice.Box) ([][3]float64, []lattice.Species) {
		var pos [][3]float64
		var spec []lattice.Species
		for i := 0; i < b.NumSites(); i++ {
			s := b.GetIndex(i)
			if !s.IsAtom() {
				continue
			}
			v := b.SiteAt(i)
			pos = append(pos, [3]float64{0.5 * a * float64(v.X), 0.5 * a * float64(v.Y), 0.5 * a * float64(v.Z)})
			spec = append(spec, s)
		}
		return pos, spec
	}
	cell := [3]float64{a * n, a * n, a * n}
	posI, specI := makeStructure(box)
	eFullI := p.StructureEnergy(posI, specI, cell)

	for k := 0; k < 8; k++ {
		if !valid[k] {
			t.Fatalf("hop %d unexpectedly invalid", k)
		}
		hopped := box.Clone()
		nn := center.Add(lattice.NN1[k])
		moved := hopped.Get(nn)
		hopped.Set(center, moved)
		hopped.Set(nn, lattice.Vacancy)
		posF, specF := makeStructure(hopped)
		eFullF := p.StructureEnergy(posF, specF, cell)
		wantDelta := eFullF - eFullI
		gotDelta := final[k] - initial
		if math.Abs(gotDelta-wantDelta) > 1e-8*(1+math.Abs(wantDelta)) {
			t.Fatalf("hop %d: region ΔE %v vs continuous ΔE %v", k, gotDelta, wantDelta)
		}
	}
}

func TestRegionEvaluatorPureFeSymmetry(t *testing.T) {
	p := New(Default())
	tb := encoding.New(units.LatticeConstantFe, units.CutoffStandard)
	ev := NewRegionEvaluator(p, tb)
	vet := tb.NewVET()
	for i := range vet {
		vet[i] = lattice.Fe
	}
	vet[0] = lattice.Vacancy
	initial, final, valid := ev.HopEnergies(vet)
	for k := 0; k < 8; k++ {
		if !valid[k] {
			t.Fatalf("hop %d invalid", k)
		}
		if math.Abs(final[k]-initial) > 1e-9 {
			t.Fatalf("pure-Fe hop %d changed energy by %v", k, final[k]-initial)
		}
	}
}

func TestSiteEVERConsistency(t *testing.T) {
	p := New(Default())
	tb := encoding.New(units.LatticeConstantFe, units.CutoffStandard)
	ev := NewRegionEvaluator(p, tb)
	vet := tb.NewVET()
	for i := range vet {
		vet[i] = lattice.Fe
	}
	vet[0] = lattice.Vacancy
	for _, i := range []int{1, 10, 100} {
		evv, err_ := ev.SiteEVER(vet, i)
		want := 0.5*evv + p.Embed(err_)
		if got := ev.SiteEnergy(vet, i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("SiteEnergy inconsistent with Eq. 7 at site %d", i)
		}
	}
	if e := ev.SiteEnergy(vet, 0); e != 0 {
		t.Fatalf("vacancy site energy = %v, want 0", e)
	}
}

func TestNewPanicsOnBadCutoffs(t *testing.T) {
	bad := Default()
	bad.RIn = 7.0 // beyond RCut
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(bad)
}

func TestRegionEvaluatorRejectsWideCutoff(t *testing.T) {
	p := New(Default())
	tb := encoding.New(units.LatticeConstantFe, 5.8) // tables narrower than potential
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegionEvaluator(p, tb)
}

// TestFastEvaluatorMatchesExact: the incremental hop evaluator must agree
// with the exact full-resummation evaluator to floating-point noise on
// random alloy environments.
func TestFastEvaluatorMatchesExact(t *testing.T) {
	p := New(Default())
	tb := encoding.New(units.LatticeConstantFe, units.CutoffStandard)
	exact := NewRegionEvaluator(p, tb)
	fast := NewFastRegionEvaluator(p, tb)
	box := lattice.NewBox(14, 14, 14, units.LatticeConstantFe)
	r := rng.New(71)
	lattice.FillRandomAlloy(box, 0.25, 0.002, r)
	for trial := 0; trial < 20; trial++ {
		// Random vacancy centre.
		var center lattice.Vec
		for {
			i := r.Intn(box.NumSites())
			center = box.SiteAt(i)
			if box.GetIndex(i).IsAtom() {
				box.SetIndex(i, lattice.Vacancy)
				break
			}
		}
		vet := tb.NewVET()
		tb.FillVET(vet, center, box.Get)
		ei, fi, vi := exact.HopEnergies(vet)
		ef, ff, vf := fast.HopEnergies(vet)
		if ei != ef {
			t.Fatalf("trial %d: initial energies differ: %v vs %v", trial, ei, ef)
		}
		for k := 0; k < 8; k++ {
			if vi[k] != vf[k] {
				t.Fatalf("trial %d hop %d: validity differs", trial, k)
			}
			if !vi[k] {
				continue
			}
			if math.Abs(fi[k]-ff[k]) > 1e-10*(1+math.Abs(fi[k])) {
				t.Fatalf("trial %d hop %d: exact %v vs fast %v (Δ=%v)",
					trial, k, fi[k], ff[k], fi[k]-ff[k])
			}
		}
		box.Set(center, lattice.Fe) // restore an atom and move on
	}
}

// TestFastEvaluatorEngineTrajectory: a KMC engine driven by the fast
// evaluator must reproduce the exact evaluator's trajectory (rate
// differences are ~1e-14 relative — far below selection thresholds).
func TestFastEvaluatorEngineTrajectory(t *testing.T) {
	p := New(Default())
	tb := encoding.New(units.LatticeConstantFe, units.CutoffStandard)
	mkBox := func() *lattice.Box {
		box := lattice.NewBox(12, 12, 12, units.LatticeConstantFe)
		lattice.FillRandomAlloy(box, 0.08, 0.002, rng.New(72))
		return box
	}
	boxA, boxB := mkBox(), mkBox()
	a := kmc.NewEngine(boxA, NewRegionEvaluator(p, tb), units.ReactorTemperature, rng.New(73), kmc.Options{})
	b := kmc.NewEngine(boxB, NewFastRegionEvaluator(p, tb), units.ReactorTemperature, rng.New(73), kmc.Options{})
	for i := 0; i < 150; i++ {
		evA, okA := a.Step(1e300)
		evB, okB := b.Step(1e300)
		if okA != okB || evA.From != evB.From || evA.To != evB.To {
			t.Fatalf("step %d: fast evaluator diverged", i)
		}
	}
	if !boxA.Equal(boxB) {
		t.Fatal("final configurations differ")
	}
}

func TestFastEvaluatorPureFeSymmetry(t *testing.T) {
	p := New(Default())
	tb := encoding.New(units.LatticeConstantFe, units.CutoffStandard)
	fast := NewFastRegionEvaluator(p, tb)
	vet := tb.NewVET()
	for i := range vet {
		vet[i] = lattice.Fe
	}
	vet[0] = lattice.Vacancy
	initial, final, valid := fast.HopEnergies(vet)
	for k := 0; k < 8; k++ {
		if !valid[k] || math.Abs(final[k]-initial) > 1e-10 {
			t.Fatalf("pure-Fe hop %d: ΔE = %v", k, final[k]-initial)
		}
	}
}

// TestDivacancyBinding pins the multi-vacancy physics the engine exposes:
// two adjacent vacancies share broken bonds, so the bound (1NN) divacancy
// has lower energy than two well-separated vacancies — the origin of the
// vacancy clustering (and mutual trapping) seen in long runs.
func TestDivacancyBinding(t *testing.T) {
	p := New(Default())
	a := units.LatticeConstantFe
	const n = 8
	energyWithVacanciesAt := func(sites ...lattice.Vec) float64 {
		box := lattice.NewBox(n, n, n, a)
		for _, v := range sites {
			box.Set(v, lattice.Vacancy)
		}
		var pos [][3]float64
		var spec []lattice.Species
		for i := 0; i < box.NumSites(); i++ {
			s := box.GetIndex(i)
			if !s.IsAtom() {
				continue
			}
			pos = append(pos, box.PositionOf(i, a))
			spec = append(spec, s)
		}
		return p.StructureEnergy(pos, spec, [3]float64{a * n, a * n, a * n})
	}
	bound := energyWithVacanciesAt(lattice.Vec{X: 4, Y: 4, Z: 4}, lattice.Vec{X: 5, Y: 5, Z: 5})
	apart := energyWithVacanciesAt(lattice.Vec{X: 4, Y: 4, Z: 4}, lattice.Vec{X: 12, Y: 12, Z: 12})
	binding := apart - bound
	if binding <= 0 {
		t.Fatalf("divacancy not bound: E_1NN=%v >= E_far=%v", bound, apart)
	}
	if binding > 1.0 {
		t.Fatalf("divacancy binding %v eV implausibly strong", binding)
	}
	t.Logf("divacancy 1NN binding energy: %.3f eV", binding)
}
