package nnp

import (
	"bytes"
	"testing"

	"tensorkmc/internal/rng"
	"tensorkmc/internal/units"

	"tensorkmc/internal/feature"
)

// FuzzLoadPotential feeds Load corrupted potential files: it must never
// panic or attempt absurd allocations, and whenever it succeeds the
// result must round-trip to exactly the input bytes (the format is
// canonical, so anything else is a silent success on corruption).
func FuzzLoadPotential(f *testing.F) {
	desc := feature.Standard(units.CutoffStandard)
	pot := NewPotential(desc, []int{desc.Dim(), 4, 1}, rng.New(7))
	pot.FeatMean = make([]float64, desc.Dim())
	pot.FeatStd = make([]float64, desc.Dim())
	for i := range pot.FeatStd {
		pot.FeatMean[i] = 0.01 * float64(i)
		pot.FeatStd[i] = 1
	}
	var buf bytes.Buffer
	if err := pot.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:8])                        // magic only
	f.Add(valid[:len(valid)/3])             // truncated
	f.Add(append(bytes.Clone(valid), 0x00)) // trailing garbage
	for _, i := range []int{0, 10, 16, 24, 25, len(valid) / 2, len(valid) - 1} {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x80
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if p.Desc == nil || p.Desc.Dim() <= 0 {
			t.Fatal("accepted potential with invalid descriptor")
		}
		for e, net := range p.Nets {
			if net == nil || len(net.Sizes) < 2 || net.Sizes[0] != p.Desc.Dim() {
				t.Fatalf("accepted inconsistent network for element %d", e)
			}
		}
		var out bytes.Buffer
		if err := p.Save(&out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted non-canonical input (%d bytes in, %d bytes round-tripped)", len(data), out.Len())
		}
	})
}
