// Package units collects the physical constants and unit conventions used
// throughout TensorKMC. Energies are in electron-volts (eV), distances in
// angstroms (Å), times in seconds, and temperatures in kelvin, matching the
// conventions of the TensorKMC paper (SC '21).
package units

import "math"

const (
	// KB is Boltzmann's constant in eV/K.
	KB = 8.617333262e-5

	// AttemptFrequency is the attempt frequency Γ₀ of Eq. (1) in the
	// paper, in 1/s.
	AttemptFrequency = 6e12

	// LatticeConstantFe is the bcc Fe lattice constant a in Å used by
	// the paper's validation and application runs.
	LatticeConstantFe = 2.87

	// CutoffStandard is the standard interaction cutoff radius in Å
	// (Sec. 4.1.1); CutoffShort is the reduced cutoff compared against
	// in Fig. 11.
	CutoffStandard = 6.5
	CutoffShort    = 5.8

	// EA0Fe and EA0Cu are the reference activation energies E_a⁰ of
	// Eq. (2) for a migrating Fe or Cu atom, in eV.
	EA0Fe = 0.65
	EA0Cu = 0.56

	// RoomTemperature and ReactorTemperature (573 K thermal aging) are
	// the temperatures used in the paper's runs.
	RoomTemperature    = 300.0
	ReactorTemperature = 573.0
)

// Beta returns 1/(k_B·T) in 1/eV for the given temperature in kelvin.
func Beta(temperatureK float64) float64 {
	return 1.0 / (KB * temperatureK)
}

// ArrheniusRate returns Γ₀·exp(−Ea/(k_B·T)) per Eq. (1). Negative
// activation energies are clamped to zero so a downhill hop saturates at
// the attempt frequency rather than exceeding it.
func ArrheniusRate(activationEV, temperatureK float64) float64 {
	if activationEV < 0 {
		activationEV = 0
	}
	return AttemptFrequency * math.Exp(-activationEV*Beta(temperatureK))
}

// MigrationEnergy returns E_a of Eq. (2): the species reference barrier
// plus half the total energy change of the hop.
func MigrationEnergy(ea0, deltaE float64) float64 {
	return ea0 + 0.5*deltaE
}
