package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPhaseGetOrCreate: the shared-path contract — two layers resolving
// the same path reach the same node, so span totals aggregate without
// handle threading.
func TestPhaseGetOrCreate(t *testing.T) {
	tr := NewTracer(nil)
	a := tr.PhaseAt(PhaseRun, PhaseSegment, PhaseStep)
	b := tr.Phase(PhaseRun).Child(PhaseSegment).Child(PhaseStep)
	if a != b {
		t.Fatal("same path must resolve to the same node")
	}
	if a.path != "run/segment/step" {
		t.Fatalf("path %q", a.path)
	}
}

// TestPhaseAccumulation: observations accumulate seconds and counts,
// and the snapshot tree mirrors the structure.
func TestPhaseAccumulation(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Phase("run")
	child := root.Child("eval")
	root.Observe(100 * time.Millisecond)
	child.Observe(30 * time.Millisecond)
	child.Observe(40 * time.Millisecond)

	if root.Count() != 1 || child.Count() != 2 {
		t.Fatalf("counts %d/%d", root.Count(), child.Count())
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "run" || len(spans[0].Children) != 1 {
		t.Fatalf("span tree shape wrong: %+v", spans)
	}
	n := spans[0]
	if got, want := n.Children[0].Seconds, 0.07; !closeTo(got, want) {
		t.Fatalf("child seconds %v, want %v", got, want)
	}
	if cov := n.Coverage(); !closeTo(cov, 0.7) {
		t.Fatalf("coverage %v, want 0.7", cov)
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestStopwatch: the Start/Stop pair records a span; nil phases produce
// a zero stopwatch whose Stop is a no-op.
func TestStopwatch(t *testing.T) {
	tr := NewTracer(nil)
	p := tr.Phase("x")
	sw := p.Start()
	time.Sleep(time.Millisecond)
	sw.Stop()
	if p.Count() != 1 || p.Seconds() <= 0 {
		t.Fatalf("stopwatch did not record: count=%d sec=%v", p.Count(), p.Seconds())
	}
	var nilPh *Phase
	nilPh.Start().Stop() // must not panic
}

// TestPhaseConcurrency: parallel ranks hammer the same node (run under
// -race).
func TestPhaseConcurrency(t *testing.T) {
	tr := NewTracer(NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.PhaseAt("run", "segment", "sector").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if n := tr.PhaseAt("run", "segment", "sector").Count(); n != 4000 {
		t.Fatalf("lost observations: %d", n)
	}
}

// TestTracerFeedsRegistry: every phase doubles as a
// tkmc_phase_seconds{phase=...} histogram.
func TestTracerFeedsRegistry(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	tr.PhaseAt("run", "segment").Observe(5 * time.Millisecond)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `tkmc_phase_seconds_count{phase="run/segment"} 1`) {
		t.Fatalf("phase histogram missing:\n%s", sb.String())
	}
}

// TestWriteTable: the run-summary breakdown renders counts, totals and
// percent-of-parent, with idle phases omitted.
func TestWriteTable(t *testing.T) {
	tr := NewTracer(nil)
	run := tr.Phase("run")
	run.Observe(time.Second)
	run.Child("segment").Observe(900 * time.Millisecond)
	run.Child("idle") // never observed: must not render
	var sb strings.Builder
	if err := tr.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"phase", "run", "  segment", "90.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "idle") {
		t.Errorf("idle phase must be omitted:\n%s", out)
	}
	var nilTr *Tracer
	if err := nilTr.WriteTable(&sb); err != nil {
		t.Fatal("nil tracer WriteTable must be a no-op")
	}
}
